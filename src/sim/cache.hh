/**
 * @file
 * A single set-associative, physically tagged cache level with
 * write-back/write-through and allocate/no-allocate policies, per-line
 * dirty bits and lock bits (PLcache), and per-thread way partitioning
 * (NoMo/DAWG). This is the structure of paper Fig. 1.
 */

#ifndef WB_SIM_CACHE_HH
#define WB_SIM_CACHE_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "sim/address.hh"
#include "sim/replacement.hh"

namespace wb::sim
{

/** When modified data is propagated to the next level. */
enum class WritePolicy
{
    WriteBack,   //!< dirty bit per line; write back on eviction
    WriteThrough //!< every store is forwarded; lines never dirty
};

/** Whether a store miss allocates the line. */
enum class AllocPolicy
{
    WriteAllocate,
    NoWriteAllocate
};

/** Static configuration of one cache level. */
struct CacheParams
{
    std::string name = "L1D";          //!< label used in stats/logs
    std::size_t sizeBytes = 32 * 1024; //!< total capacity
    unsigned ways = 8;                 //!< associativity
    PolicyKind policy = PolicyKind::TreePlru; //!< replacement policy
    WritePolicy writePolicy = WritePolicy::WriteBack;
    AllocPolicy allocPolicy = AllocPolicy::WriteAllocate;

    /**
     * Per-thread way masks for partitioned caches (bit w set = thread
     * may fill way w). Empty means no partitioning. (NoMo/DAWG.)
     */
    std::vector<std::uint32_t> fillMaskPerThread;

    /**
     * DAWG-style isolation: when true a thread's probes can only hit in
     * its own partition ways; NoMo (false) isolates fills only.
     */
    bool probeIsolated = false;

    /**
     * PLcache defense: lines become locked when written (the protected
     * process' dirty data cannot be evicted by other processes, which
     * removes the replacement-latency signal).
     */
    bool lockOnWrite = false;

    /** Number of sets implied by size/ways/line size. */
    unsigned
    numSets() const
    {
        return static_cast<unsigned>(sizeBytes / (ways * lineBytes));
    }
};

/** One cache line's metadata (data values are not simulated). */
struct Line
{
    bool valid = false;
    bool dirty = false;
    bool locked = false;       //!< PLcache lock bit
    Addr lineAddr = 0;         //!< full line-granular physical address
    ThreadId filledBy = 0;     //!< thread that installed the line
};

/** Description of a line pushed out by a fill. */
struct Evicted
{
    bool any = false;   //!< a valid line was evicted
    bool dirty = false; //!< ...and it was dirty (needs write-back)
    Addr lineAddr = 0;  //!< its address
};

/** Result of Cache::fill(). */
struct FillOutcome
{
    bool filled = false; //!< false when locking/partitioning blocked it
    unsigned way = 0;
    Evicted evicted;
};

/**
 * One cache level. The surrounding Hierarchy implements the latency
 * model and inter-level traffic; this class only tracks state.
 */
class Cache
{
  public:
    /**
     * @param params static configuration
     * @param rng randomness for stochastic replacement policies; may be
     *        nullptr if the chosen policy is deterministic
     */
    Cache(const CacheParams &params, Rng *rng);

    /** Invalidate everything and reset replacement state. */
    void reset();

    /** The static configuration. */
    const CacheParams &params() const { return params_; }

    /** Address decomposition for this geometry. */
    const AddressLayout &layout() const { return layout_; }

    /**
     * Look up @p paddr. Honors probe isolation for @p tid when
     * configured. @return the hit way, or nullopt on miss.
     */
    std::optional<unsigned> probe(Addr paddr, ThreadId tid) const;

    /**
     * Record a hit on @p way for @p paddr: updates replacement state
     * and, for write-back caches, sets the dirty bit on stores.
     */
    void onHit(Addr paddr, unsigned way, ThreadId tid, bool isWrite);

    /**
     * Install @p paddr, evicting a victim if the set is full.
     *
     * @param asDirty install already dirty (write-allocate store, or a
     *        write-back arriving from the level above)
     * @return fill outcome including the evicted line, if any
     */
    FillOutcome fill(Addr paddr, ThreadId tid, bool asDirty);

    /**
     * Drop @p paddr if present.
     * @param wasDirty out-param set when the dropped line was dirty
     * @return true when the line was present
     */
    bool invalidate(Addr paddr, bool &wasDirty);

    /** PLcache: lock the line holding @p paddr. @return success. */
    bool lock(Addr paddr);

    /** PLcache: unlock the line holding @p paddr. @return success. */
    bool unlock(Addr paddr);

    /** PLcache: clear every lock bit. */
    void unlockAll();

    /** True when @p paddr is cached (ignores probe isolation). */
    bool contains(Addr paddr) const;

    /** True when @p paddr is cached and dirty. */
    bool isDirty(Addr paddr) const;

    /** Number of dirty lines currently in @p set. */
    unsigned dirtyCountInSet(unsigned set) const;

    /** Number of valid lines currently in @p set. */
    unsigned validCountInSet(unsigned set) const;

    /** Copy of the lines of @p set (tests/benches introspection). */
    std::vector<Line> setContents(unsigned set) const;

    /** Total number of sets. */
    unsigned numSets() const { return layout_.numSets(); }

  private:
    /** Candidate mask for victim selection for @p tid in @p set. */
    std::vector<bool> fillCandidates(unsigned set, ThreadId tid) const;

    /** True when @p tid may fill @p way. */
    bool allowedWay(ThreadId tid, unsigned way) const;

    Line *find(Addr paddr);
    const Line *find(Addr paddr) const;

    CacheParams params_;
    AddressLayout layout_;
    std::vector<std::vector<Line>> sets_;
    std::vector<std::unique_ptr<ReplacementPolicy>> policies_;
};

} // namespace wb::sim

#endif // WB_SIM_CACHE_HH
