/**
 * @file
 * A single set-associative, physically tagged cache level with
 * write-back/write-through and allocate/no-allocate policies, per-line
 * dirty bits and lock bits (PLcache), and per-thread way partitioning
 * (NoMo/DAWG). This is the structure of paper Fig. 1.
 *
 * Storage is structure-of-arrays for speed: line addresses, packed
 * per-line flag bytes and filling-thread ids live in flat arrays
 * indexed by set * ways + way, and each set additionally keeps 32-bit
 * valid/locked way bitmasks so victim-candidate selection is three
 * bitwise ops instead of a per-way scan. Replacement state is held
 * inline for all sets in one flat PolicyTable (no per-set heap objects
 * or virtual dispatch on the hot path). See docs/PERF.md.
 */

#ifndef WB_SIM_CACHE_HH
#define WB_SIM_CACHE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "sim/address.hh"
#include "sim/replacement.hh"

namespace wb::sim
{

/** When modified data is propagated to the next level. */
enum class WritePolicy
{
    WriteBack,   //!< dirty bit per line; write back on eviction
    WriteThrough //!< every store is forwarded; lines never dirty
};

/** Whether a store miss allocates the line. */
enum class AllocPolicy
{
    WriteAllocate,
    NoWriteAllocate
};

/** Static configuration of one cache level. */
struct CacheParams
{
    std::string name = "L1D";          //!< label used in stats/logs
    std::size_t sizeBytes = 32 * 1024; //!< total capacity
    unsigned ways = 8;                 //!< associativity (at most 32)
    PolicyKind policy = PolicyKind::TreePlru; //!< replacement policy
    WritePolicy writePolicy = WritePolicy::WriteBack;
    AllocPolicy allocPolicy = AllocPolicy::WriteAllocate;

    /**
     * Per-thread way masks for partitioned caches (bit w set = thread
     * may fill way w). Empty means no partitioning. (NoMo/DAWG.)
     */
    std::vector<std::uint32_t> fillMaskPerThread;

    /**
     * DAWG-style isolation: when true a thread's probes can only hit in
     * its own partition ways; NoMo (false) isolates fills only.
     */
    bool probeIsolated = false;

    /**
     * PLcache defense: lines become locked when written (the protected
     * process' dirty data cannot be evicted by other processes, which
     * removes the replacement-latency signal).
     */
    bool lockOnWrite = false;

    /** Number of sets implied by size/ways/line size. */
    unsigned
    numSets() const
    {
        return static_cast<unsigned>(sizeBytes / (ways * lineBytes));
    }
};

/** One cache line's metadata (data values are not simulated). */
struct Line
{
    bool valid = false;
    bool dirty = false;
    bool locked = false;       //!< PLcache lock bit
    Addr lineAddr = 0;         //!< full line-granular physical address
    ThreadId filledBy = 0;     //!< thread that installed the line
};

/** Description of a line pushed out by a fill. */
struct Evicted
{
    bool any = false;   //!< a valid line was evicted
    bool dirty = false; //!< ...and it was dirty (needs write-back)
    Addr lineAddr = 0;  //!< its address
};

/** Result of Cache::fill(). */
struct FillOutcome
{
    bool filled = false; //!< false when locking/partitioning blocked it
    bool residentHit = false; //!< the line was already resident
    unsigned way = 0;
    Evicted evicted;
};

/** Aggregate outcome of a probeBatch()/fillBatch() call. */
struct BatchStats
{
    std::uint64_t hits = 0;     //!< lookups that found the line resident
    std::uint64_t misses = 0;   //!< lookups that did not
    std::uint64_t fills = 0;    //!< lines actually installed
    std::uint64_t bypassed = 0; //!< fills blocked by locks/partitioning
    std::uint64_t evictions = 0;      //!< valid lines pushed out
    std::uint64_t dirtyEvictions = 0; //!< ...of which dirty
};

/**
 * One cache level. The surrounding Hierarchy implements the latency
 * model and inter-level traffic; this class only tracks state.
 */
class Cache
{
  public:
    /**
     * @param params static configuration
     * @param rng randomness for stochastic replacement policies; may be
     *        nullptr if the chosen policy is deterministic
     */
    Cache(const CacheParams &params, Rng *rng);

    /** Invalidate everything and reset replacement state. */
    void reset();

    /** The static configuration. */
    const CacheParams &params() const { return params_; }

    /** Address decomposition for this geometry. */
    const AddressLayout &layout() const { return layout_; }

    /**
     * Look up @p paddr. Honors probe isolation for @p tid when
     * configured. @return the hit way, or nullopt on miss.
     */
    std::optional<unsigned> probe(Addr paddr, ThreadId tid) const;

    /**
     * Record a hit on @p way for @p paddr: updates replacement state
     * and, for write-back caches, sets the dirty bit on stores.
     */
    void onHit(Addr paddr, unsigned way, ThreadId tid, bool isWrite);

    /**
     * Install @p paddr, evicting a victim if the set is full. A fill of
     * a resident line degenerates to a (write) hit.
     *
     * @param asDirty install already dirty (write-allocate store, or a
     *        write-back arriving from the level above)
     * @return fill outcome including the evicted line, if any
     */
    FillOutcome fill(Addr paddr, ThreadId tid, bool asDirty);

    /**
     * Look up a whole address list in one call (an eviction-set
     * traversal). Read-only: replacement state is not touched.
     *
     * @param hitWay optional out-array of @p n entries; entry i becomes
     *        the hit way for addrs[i], or 0xff on miss.
     */
    BatchStats probeBatch(const Addr *addrs, std::size_t n, ThreadId tid,
                          std::uint8_t *hitWay = nullptr) const;

    /** Convenience overload over a vector. */
    BatchStats
    probeBatch(const std::vector<Addr> &addrs, ThreadId tid,
               std::uint8_t *hitWay = nullptr) const
    {
        return probeBatch(addrs.data(), addrs.size(), tid, hitWay);
    }

    /**
     * Drive a whole traversal of fills in one call: each address is
     * installed via the fill() path (resident lines degenerate to
     * hits). This is the idiom every channel sender/receiver sweep and
     * eviction-set prime uses.
     *
     * @param evictedOut optional sink receiving every evicted valid
     *        line, in eviction order (for write-back propagation)
     */
    BatchStats fillBatch(const Addr *addrs, std::size_t n, ThreadId tid,
                         bool asDirty,
                         std::vector<Evicted> *evictedOut = nullptr);

    /** Convenience overload over a vector. */
    BatchStats
    fillBatch(const std::vector<Addr> &addrs, ThreadId tid, bool asDirty,
              std::vector<Evicted> *evictedOut = nullptr)
    {
        return fillBatch(addrs.data(), addrs.size(), tid, asDirty,
                         evictedOut);
    }

    /**
     * Drop @p paddr if present.
     * @param wasDirty out-param set when the dropped line was dirty
     * @return true when the line was present
     */
    bool invalidate(Addr paddr, bool &wasDirty);

    /** PLcache: lock the line holding @p paddr. @return success. */
    bool lock(Addr paddr);

    /** PLcache: unlock the line holding @p paddr. @return success. */
    bool unlock(Addr paddr);

    /** PLcache: clear every lock bit. */
    void unlockAll();

    /** True when @p paddr is cached (ignores probe isolation). */
    bool contains(Addr paddr) const;

    /** True when @p paddr is cached and dirty. */
    bool isDirty(Addr paddr) const;

    /**
     * MESI-lite downgrade (M -> S): clear the dirty bit of the line
     * holding @p paddr, keeping it resident. Used by the multi-core
     * coherence layer when a remote load snoops a dirty private copy.
     * @return true when the line was present *and* dirty.
     */
    bool downgrade(Addr paddr);

    // --- Inline hot-path API (used by Hierarchy's fused access loop;
    // defined below so calls flatten to straight-line code) ---

    /**
     * Hot-path lookup with the line address and set precomputed; same
     * semantics as probe() (honors probe isolation for @p tid).
     * @return the hit way, or -1 on miss.
     */
    /**
     * Hot-path dirty check of one specific line; the caller just
     * probed @p way for this set, so no consistency check is needed.
     */
    bool
    lineDirty(unsigned set, unsigned way) const
    {
        const std::size_t idx = std::size_t(set) * params_.ways + way;
        return (unsigned(flags_[idx]) & FlagDirty) != 0;
    }

    int
    probeWay(Addr la, unsigned set, ThreadId tid) const
    {
        // Branchless compare of the whole set stripe; at most one
        // valid way can hold a line, so the lowest set bit is the
        // match. The common widths run a compile-time-bound loop so
        // the compiler unrolls and vectorizes the compares (the
        // runtime-bound fallback stays scalar).
        const unsigned ways = params_.ways;
        const Addr *stripe = &lineAddr_[std::size_t(set) * ways];
        std::uint32_t eq;
        if (ways == 8)
            eq = stripeMatch<8>(stripe, la);
        else if (ways == 16)
            eq = stripeMatch<16>(stripe, la);
        else if (ways == 4)
            eq = stripeMatch<4>(stripe, la);
        else {
            eq = 0;
            for (unsigned w = 0; w < ways; ++w)
                eq |= static_cast<std::uint32_t>(stripe[w] == la) << w;
        }
        eq &= validMask_[set];
        if (eq == 0)
            return -1;
        const unsigned w = lowestWay(eq);
        if (params_.probeIsolated && !((fillMaskFor(tid) >> w) & 1u))
            return -1;
        return static_cast<int>(w);
    }

    /**
     * Hot-path hit bookkeeping: the state effects of onHit() without
     * the way/line consistency check (the caller just probed @p way).
     */
#if defined(__GNUC__) || defined(__clang__)
    __attribute__((always_inline))
#endif
    void
    hitFast(unsigned set, unsigned way, bool isWrite)
    {
        if (isWrite && params_.writePolicy == WritePolicy::WriteBack) {
            LineFlagWord *__restrict flags = flags_.data();
            const std::size_t idx =
                std::size_t(set) * params_.ways + way;
            flags[idx] = flagWord(unsigned(flags[idx]) | FlagDirty);
            if (params_.lockOnWrite) {
                flags[idx] = flagWord(unsigned(flags[idx]) | FlagLocked);
                lockedMask_[set] |= 1u << way;
            }
        }
        policy_.onHit(set, way);
    }

    /**
     * Hot-path fill: fill() with the resident-line scan optionally
     * skipped. @p checkResident may be false only when the caller
     * just probed this cache for the line and missed with probe
     * isolation disabled (a demand fill right after a miss) — under
     * probe isolation a probe miss does not rule out residency.
     */
    FillOutcome
    fillFast(Addr paddr, ThreadId tid, bool asDirty, bool checkResident)
    {
        const auto [dirtyFill, newFlags] = fillSpec(asDirty);
        return fillLine(AddressLayout::lineAddr(paddr),
                        layout_.setIndex(paddr), tid, fillMaskFor(tid),
                        dirtyFill, newFlags, checkResident);
    }

    /**
     * The traversal-invariant fill configuration for @p asDirty:
     * {install dirty, composed line flags}. Shared by fill(),
     * fillBatch() and the Hierarchy miss path so write-policy and
     * PLcache lock rules cannot drift between them.
     */
    std::pair<bool, std::uint8_t>
    fillSpec(bool asDirty) const
    {
        const bool dirtyFill =
            asDirty && params_.writePolicy == WritePolicy::WriteBack;
        const bool lockFill = dirtyFill && params_.lockOnWrite;
        return {dirtyFill,
                static_cast<std::uint8_t>(
                    FlagValid | (dirtyFill ? FlagDirty : 0) |
                    (lockFill ? FlagLocked : 0))};
    }

    /** Number of dirty lines currently in @p set. */
    unsigned dirtyCountInSet(unsigned set) const;

    /** Number of valid lines currently in @p set. */
    unsigned validCountInSet(unsigned set) const;

    /** Copy of the lines of @p set (tests/benches introspection). */
    std::vector<Line> setContents(unsigned set) const;

    /** Total number of sets. */
    unsigned numSets() const { return layout_.numSets(); }

  private:
    /** Packed per-line flag bits (flags_ entries). */
    enum LineFlag : std::uint8_t
    {
        FlagValid = 1,
        FlagDirty = 2,
        FlagLocked = 4,
    };

    /**
     * Storage type of flags_: a distinct 8-bit enum rather than
     * std::uint8_t because the character types' alias-everything rule
     * would force the optimizer to reload every cached invariant
     * (vector data pointers, geometry masks, latency parameters)
     * after each flag store in the fused hierarchy loop.
     */
    enum LineFlagWord : std::uint8_t
    {
    };

    /** Compose a LineFlagWord from LineFlag bits. */
    static LineFlagWord
    flagWord(unsigned bits)
    {
        return static_cast<LineFlagWord>(bits);
    }

    /** Cached fill mask (bit w set = thread may fill way w). */
    std::uint32_t
    fillMaskFor(ThreadId tid) const
    {
        return tid < fillMask_.size() ? fillMask_[tid] : allMask_;
    }

    /** Fixed-width stripe compare (vectorizable): match bitmask. */
    template <unsigned Ways>
    static std::uint32_t
    stripeMatch(const Addr *stripe, Addr la)
    {
        std::uint32_t eq = 0;
        for (unsigned w = 0; w < Ways; ++w)
            eq |= static_cast<std::uint32_t>(stripe[w] == la) << w;
        return eq;
    }

    /** Flat index of the resident line for @p paddr, or npos. */
    std::size_t findIndex(Addr paddr) const;

    /**
     * The shared per-line fill semantics behind fill(), fillBatch()
     * and the Hierarchy miss path: resident-hit degeneration,
     * candidate masking, victim selection and line install. Callers
     * precompute the per-traversal invariants (@p fillMask,
     * @p dirtyFill and the composed @p newFlags). @p checkResident
     * may be false only when the caller just probed this cache for
     * @p la and missed with probe isolation disabled (the demand-fill
     * fast path), skipping a redundant set scan. Force-inlined: the
     * compiler otherwise outlines it, costing ~8% on the fill-evict
     * benchmark. Defined below.
     */
#if defined(__GNUC__) || defined(__clang__)
    __attribute__((always_inline))
#endif
    inline FillOutcome fillLine(Addr la, unsigned set, ThreadId tid,
                                std::uint32_t fillMask, bool dirtyFill,
                                std::uint8_t newFlags,
                                bool checkResident = true);

    /**
     * Cold panic half of fillLine's ineligible-victim check, kept out
     * of line: panicf's stream formatting would otherwise inline into
     * every fillLine copy in the flattened miss path.
     */
    [[noreturn]] void badVictimWay(unsigned way) const;

    static constexpr std::size_t npos = ~std::size_t(0);

    CacheParams params_;
    AddressLayout layout_;

    // Structure-of-arrays line storage, indexed by set * ways + way.
    std::vector<Addr> lineAddr_;
    std::vector<LineFlagWord> flags_;
    std::vector<ThreadId> filledBy_;

    // Per-set way bitmasks (bit w = way w valid / locked).
    std::vector<std::uint32_t> validMask_;
    std::vector<std::uint32_t> lockedMask_;

    std::vector<std::uint32_t> fillMask_; //!< cached per-thread masks
    std::uint32_t allMask_ = 0;           //!< bits [0, ways)

    PolicyTable policy_;
};

inline FillOutcome
Cache::fillLine(Addr la, unsigned set, ThreadId tid,
                std::uint32_t fillMask, bool dirtyFill,
                std::uint8_t newFlags, bool checkResident)
{
    const std::size_t base = std::size_t(set) * params_.ways;

    // The line-state arrays never overlap; the restrict-qualified
    // locals keep the std::uint8_t flag stores (which otherwise alias
    // everything) from forcing pointer and counter reloads in the
    // flattened miss path.
    Addr *__restrict lineAddr = lineAddr_.data();
    LineFlagWord *__restrict flags = flags_.data();
    ThreadId *__restrict filledBy = filledBy_.data();
    std::uint32_t *__restrict validMask = validMask_.data();
    std::uint32_t *__restrict lockedMask = lockedMask_.data();

    // A fill of a resident line degenerates to a (write) hit. This
    // happens when a write-back from the level above finds the line
    // still cached here.
    if (checkResident) {
        for (std::uint32_t m = validMask[set]; m != 0; m &= m - 1) {
            const unsigned w = lowestWay(m);
            if (lineAddr[base + w] != la)
                continue;
            if (dirtyFill) {
                flags[base + w] =
                    flagWord(unsigned(flags[base + w]) | FlagDirty);
                if (params_.lockOnWrite) {
                    // A write-back arrival dirties the line, so
                    // PLcache locks it — same rule as onHit() on a
                    // store.
                    flags[base + w] = flagWord(
                        unsigned(flags[base + w]) | FlagLocked);
                    lockedMask[set] |= 1u << w;
                }
            }
            policy_.onHit(set, w);
            FillOutcome hitOut;
            hitOut.filled = true;
            hitOut.residentHit = true;
            hitOut.way = w;
            return hitOut;
        }
    }

    // Candidate ways: inside the thread's partition and not locked.
    const std::uint32_t candidates = fillMask & ~lockedMask[set];
    if (candidates == 0)
        return {}; // everything locked / partition empty: bypass

    FillOutcome out;
    out.filled = true;

    // Prefer an invalid candidate way; otherwise every candidate is
    // valid, so ask the policy for a victim among them.
    unsigned way;
    const std::uint32_t invalid = candidates & ~validMask[set];
    if (invalid != 0) {
        way = lowestWay(invalid);
    } else {
        way = policy_.victim(set, candidates);
        if (way >= params_.ways || !((candidates >> way) & 1u))
            badVictimWay(way);
        const std::size_t idx = base + way;
        out.evicted.any = true;
        out.evicted.dirty = (unsigned(flags[idx]) & FlagDirty) != 0;
        out.evicted.lineAddr = lineAddr[idx];
    }

    const std::size_t idx = base + way;
    lineAddr[idx] = la;
    filledBy[idx] = tid;
    flags[idx] = flagWord(newFlags);
    validMask[set] |= 1u << way;
    if ((newFlags & FlagLocked) != 0)
        lockedMask[set] |= 1u << way;
    else
        lockedMask[set] &= ~(1u << way);
    policy_.onFill(set, way);
    out.way = way;
    return out;
}

} // namespace wb::sim

#endif // WB_SIM_CACHE_HH
