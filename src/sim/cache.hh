/**
 * @file
 * A single set-associative, physically tagged cache level with
 * write-back/write-through and allocate/no-allocate policies, per-line
 * dirty bits and lock bits (PLcache), and per-thread way partitioning
 * (NoMo/DAWG). This is the structure of paper Fig. 1.
 *
 * Storage is structure-of-arrays for speed: line addresses, packed
 * per-line flag bytes and filling-thread ids live in flat arrays
 * indexed by set * ways + way, and each set additionally keeps 32-bit
 * valid/locked way bitmasks so victim-candidate selection is three
 * bitwise ops instead of a per-way scan. Replacement state is held
 * inline for all sets in one flat PolicyTable (no per-set heap objects
 * or virtual dispatch on the hot path). See docs/PERF.md.
 */

#ifndef WB_SIM_CACHE_HH
#define WB_SIM_CACHE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "sim/address.hh"
#include "sim/replacement.hh"

namespace wb::sim
{

/** When modified data is propagated to the next level. */
enum class WritePolicy
{
    WriteBack,   //!< dirty bit per line; write back on eviction
    WriteThrough //!< every store is forwarded; lines never dirty
};

/** Whether a store miss allocates the line. */
enum class AllocPolicy
{
    WriteAllocate,
    NoWriteAllocate
};

/** Static configuration of one cache level. */
struct CacheParams
{
    std::string name = "L1D";          //!< label used in stats/logs
    std::size_t sizeBytes = 32 * 1024; //!< total capacity
    unsigned ways = 8;                 //!< associativity (at most 32)
    PolicyKind policy = PolicyKind::TreePlru; //!< replacement policy
    WritePolicy writePolicy = WritePolicy::WriteBack;
    AllocPolicy allocPolicy = AllocPolicy::WriteAllocate;

    /**
     * Per-thread way masks for partitioned caches (bit w set = thread
     * may fill way w). Empty means no partitioning. (NoMo/DAWG.)
     */
    std::vector<std::uint32_t> fillMaskPerThread;

    /**
     * DAWG-style isolation: when true a thread's probes can only hit in
     * its own partition ways; NoMo (false) isolates fills only.
     */
    bool probeIsolated = false;

    /**
     * PLcache defense: lines become locked when written (the protected
     * process' dirty data cannot be evicted by other processes, which
     * removes the replacement-latency signal).
     */
    bool lockOnWrite = false;

    /** Number of sets implied by size/ways/line size. */
    unsigned
    numSets() const
    {
        return static_cast<unsigned>(sizeBytes / (ways * lineBytes));
    }
};

/** One cache line's metadata (data values are not simulated). */
struct Line
{
    bool valid = false;
    bool dirty = false;
    bool locked = false;       //!< PLcache lock bit
    Addr lineAddr = 0;         //!< full line-granular physical address
    ThreadId filledBy = 0;     //!< thread that installed the line
};

/** Description of a line pushed out by a fill. */
struct Evicted
{
    bool any = false;   //!< a valid line was evicted
    bool dirty = false; //!< ...and it was dirty (needs write-back)
    Addr lineAddr = 0;  //!< its address
};

/** Result of Cache::fill(). */
struct FillOutcome
{
    bool filled = false; //!< false when locking/partitioning blocked it
    bool residentHit = false; //!< the line was already resident
    unsigned way = 0;
    Evicted evicted;
};

/** Aggregate outcome of a probeBatch()/fillBatch() call. */
struct BatchStats
{
    std::uint64_t hits = 0;     //!< lookups that found the line resident
    std::uint64_t misses = 0;   //!< lookups that did not
    std::uint64_t fills = 0;    //!< lines actually installed
    std::uint64_t bypassed = 0; //!< fills blocked by locks/partitioning
    std::uint64_t evictions = 0;      //!< valid lines pushed out
    std::uint64_t dirtyEvictions = 0; //!< ...of which dirty
};

/**
 * One cache level. The surrounding Hierarchy implements the latency
 * model and inter-level traffic; this class only tracks state.
 */
class Cache
{
  public:
    /**
     * @param params static configuration
     * @param rng randomness for stochastic replacement policies; may be
     *        nullptr if the chosen policy is deterministic
     */
    Cache(const CacheParams &params, Rng *rng);

    /** Invalidate everything and reset replacement state. */
    void reset();

    /** The static configuration. */
    const CacheParams &params() const { return params_; }

    /** Address decomposition for this geometry. */
    const AddressLayout &layout() const { return layout_; }

    /**
     * Look up @p paddr. Honors probe isolation for @p tid when
     * configured. @return the hit way, or nullopt on miss.
     */
    std::optional<unsigned> probe(Addr paddr, ThreadId tid) const;

    /**
     * Record a hit on @p way for @p paddr: updates replacement state
     * and, for write-back caches, sets the dirty bit on stores.
     */
    void onHit(Addr paddr, unsigned way, ThreadId tid, bool isWrite);

    /**
     * Install @p paddr, evicting a victim if the set is full. A fill of
     * a resident line degenerates to a (write) hit.
     *
     * @param asDirty install already dirty (write-allocate store, or a
     *        write-back arriving from the level above)
     * @return fill outcome including the evicted line, if any
     */
    FillOutcome fill(Addr paddr, ThreadId tid, bool asDirty);

    /**
     * Look up a whole address list in one call (an eviction-set
     * traversal). Read-only: replacement state is not touched.
     *
     * @param hitWay optional out-array of @p n entries; entry i becomes
     *        the hit way for addrs[i], or 0xff on miss.
     */
    BatchStats probeBatch(const Addr *addrs, std::size_t n, ThreadId tid,
                          std::uint8_t *hitWay = nullptr) const;

    /** Convenience overload over a vector. */
    BatchStats
    probeBatch(const std::vector<Addr> &addrs, ThreadId tid,
               std::uint8_t *hitWay = nullptr) const
    {
        return probeBatch(addrs.data(), addrs.size(), tid, hitWay);
    }

    /**
     * Drive a whole traversal of fills in one call: each address is
     * installed via the fill() path (resident lines degenerate to
     * hits). This is the idiom every channel sender/receiver sweep and
     * eviction-set prime uses.
     *
     * @param evictedOut optional sink receiving every evicted valid
     *        line, in eviction order (for write-back propagation)
     */
    BatchStats fillBatch(const Addr *addrs, std::size_t n, ThreadId tid,
                         bool asDirty,
                         std::vector<Evicted> *evictedOut = nullptr);

    /** Convenience overload over a vector. */
    BatchStats
    fillBatch(const std::vector<Addr> &addrs, ThreadId tid, bool asDirty,
              std::vector<Evicted> *evictedOut = nullptr)
    {
        return fillBatch(addrs.data(), addrs.size(), tid, asDirty,
                         evictedOut);
    }

    /**
     * Drop @p paddr if present.
     * @param wasDirty out-param set when the dropped line was dirty
     * @return true when the line was present
     */
    bool invalidate(Addr paddr, bool &wasDirty);

    /** PLcache: lock the line holding @p paddr. @return success. */
    bool lock(Addr paddr);

    /** PLcache: unlock the line holding @p paddr. @return success. */
    bool unlock(Addr paddr);

    /** PLcache: clear every lock bit. */
    void unlockAll();

    /** True when @p paddr is cached (ignores probe isolation). */
    bool contains(Addr paddr) const;

    /** True when @p paddr is cached and dirty. */
    bool isDirty(Addr paddr) const;

    /** Number of dirty lines currently in @p set. */
    unsigned dirtyCountInSet(unsigned set) const;

    /** Number of valid lines currently in @p set. */
    unsigned validCountInSet(unsigned set) const;

    /** Copy of the lines of @p set (tests/benches introspection). */
    std::vector<Line> setContents(unsigned set) const;

    /** Total number of sets. */
    unsigned numSets() const { return layout_.numSets(); }

  private:
    /** Packed per-line flag bits (flags_ entries). */
    enum LineFlag : std::uint8_t
    {
        FlagValid = 1,
        FlagDirty = 2,
        FlagLocked = 4,
    };

    /** Cached fill mask (bit w set = thread may fill way w). */
    std::uint32_t
    fillMaskFor(ThreadId tid) const
    {
        return tid < fillMask_.size() ? fillMask_[tid] : allMask_;
    }

    /** Flat index of the resident line for @p paddr, or npos. */
    std::size_t findIndex(Addr paddr) const;

    /**
     * The shared per-line fill semantics behind fill() and
     * fillBatch(): resident-hit degeneration, candidate masking,
     * victim selection and line install. Callers precompute the
     * per-traversal invariants (@p fillMask, @p dirtyFill and the
     * composed @p newFlags). Force-inlined: with two call sites the
     * compiler otherwise outlines it, costing ~8% on the fill-evict
     * benchmark.
     */
#if defined(__GNUC__) || defined(__clang__)
    __attribute__((always_inline))
#endif
    FillOutcome fillLine(Addr la, unsigned set, ThreadId tid,
                         std::uint32_t fillMask, bool dirtyFill,
                         std::uint8_t newFlags);

    static constexpr std::size_t npos = ~std::size_t(0);

    CacheParams params_;
    AddressLayout layout_;

    // Structure-of-arrays line storage, indexed by set * ways + way.
    std::vector<Addr> lineAddr_;
    std::vector<std::uint8_t> flags_;
    std::vector<ThreadId> filledBy_;

    // Per-set way bitmasks (bit w = way w valid / locked).
    std::vector<std::uint32_t> validMask_;
    std::vector<std::uint32_t> lockedMask_;

    std::vector<std::uint32_t> fillMask_; //!< cached per-thread masks
    std::uint32_t allMask_ = 0;           //!< bits [0, ways)

    PolicyTable policy_;
};

} // namespace wb::sim

#endif // WB_SIM_CACHE_HH
