/**
 * @file
 * Perf-style derived metrics (paper Tables VI and VII): cache-load
 * throughput per unit time and per-level miss rates for a process, as
 * the Linux perf tool would report them — i.e. including the L1 loads
 * retired by busy-wait loops.
 */

#ifndef WB_PERFMON_METRICS_HH
#define WB_PERFMON_METRICS_HH

#include "common/types.hh"
#include "sim/hierarchy.hh"

namespace wb::perfmon
{

/** Per-level load counts normalized to events per second (Table VI). */
struct LoadFootprint
{
    double l1PerSec = 0.0;
    double l2PerSec = 0.0;
    double llcPerSec = 0.0;
    double totalPerSec = 0.0;
};

/**
 * Normalize a process' counters over @p elapsed cycles at @p ghz.
 * L1 loads include spin-loop loads (perf counts them as retired
 * loads); L2/LLC counts are that process' accesses to those levels.
 */
LoadFootprint loadFootprint(const sim::PerfCounters &ctr, Cycles elapsed,
                            double ghz);

/** Per-level miss rates (Table VII rows). */
struct MissProfile
{
    double l1d = 0.0; //!< misses / (demand refs + spin loads)
    double l2 = 0.0;  //!< L2 misses / L2 accesses
    double llc = 0.0; //!< LLC misses / LLC accesses
};

/** Compute the Table VII-style miss profile for one process. */
MissProfile missProfile(const sim::PerfCounters &ctr);

} // namespace wb::perfmon

#endif // WB_PERFMON_METRICS_HH
