/**
 * @file
 * Benign workloads the detection experiments must tell apart from the
 * covert channels (paper Table VII compares the WB sender against
 * `sender & g++`). Used by both the offline trace collector
 * (perfmon/detector.hh) and the online detection scenarios
 * (perfmon/arms_race.hh).
 *
 * CompilerWorkload approximates a compiler's cache behaviour: a
 * pointer-heavy random walk over an AST-sized working set interleaved
 * with streaming passes over a larger buffer, plus a store share. Its
 * working set straddles L1 and L2 so a co-scheduled process sees real
 * L1/L2 contention.
 */

#ifndef WB_PERFMON_WORKLOADS_HH
#define WB_PERFMON_WORKLOADS_HH

#include <vector>

#include "common/types.hh"
#include "sim/smt_core.hh"

namespace wb::perfmon
{

/** Compiler-like mixed workload (runs forever; stopped by horizon). */
class CompilerWorkload : public sim::Program
{
  public:
    /**
     * Workload shape parameters. The default working set (96 KiB walk
     * + 128 KiB stream) exceeds the L1 by ~7x but stays L2-resident,
     * so the workload runs at L2 speed and exerts heavy, continuous
     * L1 pressure on a co-scheduled hyper-thread — the behaviour that
     * makes a benign compiler look worse than the WB receiver in the
     * paper's Table VII comparison.
     */
    struct Params
    {
        unsigned walkLines = 1536;    //!< AST walk working set (96 KiB)
        unsigned streamLines = 4096;  //!< streaming buffer (256 KiB)
        unsigned walkBurst = 768;     //!< walk accesses per phase
        unsigned streamBurst = 256;   //!< stream accesses per phase
        double storeFraction = 0.25;  //!< stores among walk accesses
    };

    /** Construct with default parameters. */
    CompilerWorkload();

    /** Construct with explicit parameters. */
    explicit CompilerWorkload(const Params &params);

    std::optional<sim::MemOp> next(sim::ProcView &view) override;
    void onResult(const sim::MemOp &op, const sim::OpResult &res,
                  sim::ProcView &view) override;

  private:
    Params params_;
    bool walking_ = true;
    unsigned burstPos_ = 0;
    Addr streamPos_ = 0;
    std::uint64_t walkState_ = 0x1234567;
};

/**
 * A process that only busy-waits (periodic wakeups, no data work): the
 * "idle" half of benign pairs in both the offline trace collector and
 * the online detection scenarios. Its only perf-visible footprint is
 * spin loads.
 */
class Spinner : public sim::Program
{
  public:
    /** @param period cycles between wakeups. */
    explicit Spinner(Cycles period) : period_(period) {}

    std::optional<sim::MemOp>
    next(sim::ProcView &) override
    {
        if (!started_) {
            started_ = true;
            return sim::MemOp::tscRead();
        }
        return sim::MemOp::spinUntil(tlast_ + period_);
    }

    void
    onResult(const sim::MemOp &, const sim::OpResult &res,
             sim::ProcView &) override
    {
        tlast_ = res.tsc;
    }

  private:
    Cycles period_;
    Cycles tlast_ = 0;
    bool started_ = false;
};

/** Pure streaming workload (memory bandwidth bound). */
class StreamingWorkload : public sim::Program
{
  public:
    /** @param lines buffer size in cache lines. */
    explicit StreamingWorkload(unsigned lines = 16384) : lines_(lines) {}

    std::optional<sim::MemOp>
    next(sim::ProcView &) override
    {
        const Addr va = 0x4000000 + (pos_ % lines_) * lineBytes;
        ++pos_;
        return sim::MemOp::pipelinedLoad(va);
    }

    void onResult(const sim::MemOp &, const sim::OpResult &,
                  sim::ProcView &) override
    {
    }

  private:
    unsigned lines_;
    Addr pos_ = 0;
};

} // namespace wb::perfmon

#endif // WB_PERFMON_WORKLOADS_HH
