/**
 * @file
 * Online per-thread timing-channel detector.
 *
 * Where the offline collector (perfmon/detector.hh) replays a quiet
 * single-core pair and reads global counters after the fact, this
 * detector rides a live run of the noisy machine: it registers a
 * sim::SampleHook on the SchedulerConfig and, at every window boundary
 * of virtual time, reads each thread's cumulative counters through
 * Scheduler::tidCounters(), forms the window's per-tid counter delta,
 * and scores it — the CloudRadar-style "perf-counter guard" of paper
 * Sec. VII, upgraded from a post-hoc trace reader to the thing a cloud
 * provider would actually deploy: per-tenant, windowed, running while
 * co-runners, context-switch pollution and migration are all live.
 *
 * The score is a weighted sum of per-kcycle rates over the features a
 * dirty-state channel plausibly shifts: L1 misses, L1 dirty
 * write-backs, inclusive-LLC back-invalidations, and cross-core dirty
 * snoops (the latter two are exactly the events the cross-core WB
 * variants live on, and are near-zero for most benign tenants). Alarm
 * decisions use a sliding mean over the last few windows so one noisy
 * window does not page the operator.
 *
 * By the SampleHook contract the detector is read-only: attaching it
 * leaves the run bit-identical to an unobserved one
 * (tests/test_detection.cc, SamplingHookIsInvisible).
 */

#ifndef WB_PERFMON_ONLINE_HH
#define WB_PERFMON_ONLINE_HH

#include <cstdint>
#include <map>
#include <vector>

#include "common/types.hh"
#include "perfmon/detector.hh"
#include "sim/hierarchy.hh"
#include "sim/scheduler.hh"

namespace wb::perfmon
{

/**
 * Feature weights of the window score. The defaults weight rare,
 * channel-specific coherence events (back-invalidations, dirty snoops)
 * far above the ambient L1 traffic every tenant produces: a benign
 * streaming tenant misses a lot but never bounces dirty lines between
 * cores, while the cross-core WB receiver does little else.
 */
struct FeatureWeights
{
    double l1Miss = 0.25;
    double writeback = 1.0;
    double backInval = 4.0;
    double snoop = 4.0;
};

/** Weighted window score of one feature vector. */
double featureScore(const WindowFeatures &f, const FeatureWeights &w);

/** Online detector configuration. */
struct OnlineDetectorConfig
{
    /** Observation window, in virtual cycles (the samplePeriod). */
    Cycles windowCycles = 50000;

    /** Sliding-mean length (windows) behind the alarm decision. */
    unsigned smoothWindows = 4;

    /**
     * Alarm when a tid's smoothed score exceeds this. The default is
     * the operating point the ROC sweeps select on the 4-core desktop
     * preset: just above the benign co-runner band's ceiling (~0.97),
     * well below a compiler tenant's peaks (~2.3) — see
     * docs/DETECTION.md for the measured frontier.
     */
    double threshold = 1.0;

    FeatureWeights weights;

    /** Monitor thread ids 0..maxTid-1. */
    ThreadId maxTid = 64;

    /**
     * Skip Scheduler::osTid: the OS pollution thread is the provider's
     * own noise, not a tenant it would page itself about.
     */
    bool ignoreOsTid = true;
};

/** One monitored window of one thread. */
struct WindowRecord
{
    Cycles end = 0;        //!< window boundary (virtual time)
    WindowFeatures f;      //!< this window's counter-delta rates
    double score = 0.0;    //!< weighted single-window score
    double smoothed = 0.0; //!< sliding mean over recent scores
    bool alarmed = false;  //!< smoothed > cfg.threshold, live
};

/**
 * The live detector. Construct, attach() to the SchedulerConfig a
 * runner will use, run the experiment, then query per-tid records.
 * One detector observes one run; make a fresh one per run.
 */
class OnlineDetector
{
  public:
    explicit OnlineDetector(const OnlineDetectorConfig &cfg) : cfg_(cfg) {}

    /**
     * Register this detector's sampling hook on @p sched. The config
     * object must outlive neither the detector nor the run — the hook
     * captures `this`, so the detector must stay alive (and at the
     * same address) until the run completes.
     */
    void attach(sim::SchedulerConfig &sched);

    /**
     * The window-boundary observer (called by the scheduler's hook;
     * public for the offline-equivalence tests to drive directly).
     */
    void onWindow(sim::Scheduler &sched, Cycles boundary);

    /** Thread ids that ever showed activity, ascending. */
    std::vector<ThreadId> tids() const;

    /** All recorded windows of @p tid (empty if never active). */
    const std::vector<WindowRecord> &windows(ThreadId tid) const;

    /** Number of windows observed (boundaries fired). */
    unsigned windowCount() const { return windowCount_; }

    /** Largest smoothed score @p tid ever reached (0 if unseen). */
    double peakSmoothed(ThreadId tid) const;

    /** Windows of @p tid whose live alarm fired at cfg.threshold. */
    unsigned liveAlarms(ThreadId tid) const;

    /**
     * Post-hoc alarm count of @p tid at an arbitrary threshold,
     * re-scored from the recorded smoothed series. At cfg.threshold
     * this equals liveAlarms() (tests/test_detection.cc,
     * RecordedScoresMatchLiveAlarms) — the recorded series is the
     * same data the live decision used, so one run serves a whole
     * ROC threshold sweep.
     */
    unsigned alarmsAt(ThreadId tid, double threshold) const;

    const OnlineDetectorConfig &config() const { return cfg_; }

  private:
    /** Per-tid running state. */
    struct TidTrack
    {
        sim::PerfCounters prev;           //!< cumulative, last boundary
        std::vector<WindowRecord> records;
        std::vector<double> recent;       //!< last <= smoothWindows scores
        bool seen = false;                //!< ever had nonzero activity
    };

    OnlineDetectorConfig cfg_;
    std::map<ThreadId, TidTrack> tracks_;
    unsigned windowCount_ = 0;
};

} // namespace wb::perfmon

#endif // WB_PERFMON_ONLINE_HH
