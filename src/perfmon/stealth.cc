#include "perfmon/stealth.hh"

#include <memory>

#include "baselines/lru_channel.hh"
#include "chan/channel.hh"
#include "chan/protocol.hh"
#include "chan/sender.hh"
#include "chan/set_mapping.hh"
#include "common/bitvec.hh"
#include "perfmon/workloads.hh"
#include "sim/smt_core.hh"

namespace wb::perfmon
{

FootprintComparison
compareSenderFootprints(Cycles ts, unsigned frames, std::uint64_t seed)
{
    FootprintComparison cmp;
    const double ghz = 2.2;

    // WB channel, binary d=1 (the stealthiest configuration).
    chan::ChannelConfig wbCfg;
    wbCfg.protocol.ts = wbCfg.protocol.tr = ts;
    wbCfg.protocol.encoding = chan::Encoding::binary(1);
    wbCfg.protocol.frames = frames;
    wbCfg.calibration.measurements = 100;
    wbCfg.seed = seed;
    auto wbRes = chan::runChannel(wbCfg);
    cmp.wb = loadFootprint(wbRes.senderCounters, wbRes.simulatedCycles,
                           ghz);

    // LRU channel with whole-slot modulation (Xiong's sender).
    baselines::BaselineConfig lruCfg;
    lruCfg.ts = lruCfg.tr = ts;
    lruCfg.frames = frames;
    lruCfg.seed = seed;
    auto lruRes =
        baselines::runLruChannel(lruCfg, /*modulateCycles=*/0);
    // The baseline runner does not expose the end time; the sender
    // runs for about frames * frameBits slots.
    const Cycles elapsed =
        static_cast<Cycles>(lruCfg.frames) * lruCfg.frameBits * ts;
    cmp.lru = loadFootprint(lruRes.senderCounters, elapsed, ghz);

    cmp.ratio = cmp.lru.totalPerSec > 0.0
        ? cmp.wb.totalPerSec / cmp.lru.totalPerSec
        : 0.0;
    return cmp;
}

MissProfile
senderMissProfile(CoRunner coRunner, bool multiBit, Cycles ts,
                  unsigned bits, std::uint64_t seed)
{
    if (coRunner == CoRunner::WbReceiver) {
        chan::ChannelConfig cfg;
        cfg.protocol.ts = cfg.protocol.tr = ts;
        cfg.protocol.encoding = multiBit ? chan::Encoding::paperTwoBit()
                                         : chan::Encoding::binary(1);
        cfg.protocol.frameBits = multiBit ? 256 : 128;
        cfg.protocol.frames =
            std::max(1u, bits / cfg.protocol.frameBits);
        cfg.calibration.measurements = 100;
        cfg.seed = seed;
        auto res = chan::runChannel(cfg);
        return missProfile(res.senderCounters);
    }

    // Sender alone or with the compiler workload: build the platform
    // by hand, no receiver.
    Rng rng(seed);
    sim::HierarchyParams hp = sim::xeonE5_2650Params();
    sim::NoiseModel noise;
    sim::Hierarchy hierarchy(hp, &rng);
    sim::SmtCore core(hierarchy, noise, rng);

    const chan::Encoding enc = multiBit ? chan::Encoding::paperTwoBit()
                                        : chan::Encoding::binary(1);
    Rng bitRng = rng.split();
    const BitVec msg = randomBits(bits, bitRng);
    BitVec padded = msg;
    while (padded.size() % enc.bitsPerSymbol() != 0)
        padded.push_back(false);
    const auto levels = chan::frameToLevels(padded, enc);

    const unsigned targetSet = 13;
    const auto senderLines = chan::linesForSet(
        hierarchy.l1().layout(), targetSet, hp.l1.ways, /*tagBase=*/1);
    chan::SenderProgram sender(senderLines, levels, ts);
    const ThreadId senderTid =
        core.addThread(&sender, sim::AddressSpace(1), 0);

    std::unique_ptr<CompilerWorkload> compiler;
    if (coRunner == CoRunner::Compiler) {
        compiler = std::make_unique<CompilerWorkload>();
        core.addThread(compiler.get(), sim::AddressSpace(5), 0);
    }

    const Cycles horizon =
        static_cast<Cycles>(levels.size() + 4) * (ts + 50) + 100000;
    core.run(horizon);
    return missProfile(hierarchy.counters(senderTid));
}

} // namespace wb::perfmon
