#include "perfmon/online.hh"

#include <algorithm>

namespace wb::perfmon
{

namespace
{

/** Demand work a thread did, cumulatively: the liveness test. */
std::uint64_t
activityOf(const sim::PerfCounters &c)
{
    return c.loads + c.stores + c.spinLoads + c.flushes;
}

const std::vector<WindowRecord> kNoWindows;

} // namespace

double
featureScore(const WindowFeatures &f, const FeatureWeights &w)
{
    return w.l1Miss * f.l1MissPerKcycle +
           w.writeback * f.writebacksPerKcycle +
           w.backInval * f.backInvalPerKcycle + w.snoop * f.snoopPerKcycle;
}

void
OnlineDetector::attach(sim::SchedulerConfig &sched)
{
    sched.samplePeriod = cfg_.windowCycles;
    sched.sampleHook = [this](sim::Scheduler &s, Cycles boundary) {
        onWindow(s, boundary);
    };
}

void
OnlineDetector::onWindow(sim::Scheduler &sched, Cycles boundary)
{
    ++windowCount_;
    for (ThreadId tid = 0; tid < cfg_.maxTid; ++tid) {
        if (cfg_.ignoreOsTid && tid == sim::Scheduler::osTid)
            continue;
        const sim::PerfCounters now = sched.tidCounters(tid);
        auto it = tracks_.find(tid);
        if (it == tracks_.end()) {
            // Only start tracking once the thread does demand work —
            // scanning 0..maxTid would otherwise fabricate records
            // for ids that never existed.
            if (activityOf(now) == 0)
                continue;
            it = tracks_.emplace(tid, TidTrack{}).first;
            it->second.seen = true;
        }
        TidTrack &track = it->second;

        sim::PerfCounters delta = now;
        delta.subtract(track.prev);
        track.prev = now;

        WindowRecord rec;
        rec.end = boundary;
        rec.f = windowFeatures(delta, cfg_.windowCycles);
        rec.score = featureScore(rec.f, cfg_.weights);

        track.recent.push_back(rec.score);
        if (track.recent.size() > cfg_.smoothWindows)
            track.recent.erase(track.recent.begin());
        double sum = 0.0;
        for (double s : track.recent)
            sum += s;
        rec.smoothed = sum / double(track.recent.size());
        rec.alarmed = rec.smoothed > cfg_.threshold;
        track.records.push_back(rec);
    }
}

std::vector<ThreadId>
OnlineDetector::tids() const
{
    std::vector<ThreadId> out;
    for (const auto &kv : tracks_)
        out.push_back(kv.first);
    return out;
}

const std::vector<WindowRecord> &
OnlineDetector::windows(ThreadId tid) const
{
    auto it = tracks_.find(tid);
    return it == tracks_.end() ? kNoWindows : it->second.records;
}

double
OnlineDetector::peakSmoothed(ThreadId tid) const
{
    double peak = 0.0;
    for (const auto &rec : windows(tid))
        peak = std::max(peak, rec.smoothed);
    return peak;
}

unsigned
OnlineDetector::liveAlarms(ThreadId tid) const
{
    unsigned n = 0;
    for (const auto &rec : windows(tid))
        if (rec.alarmed)
            ++n;
    return n;
}

unsigned
OnlineDetector::alarmsAt(ThreadId tid, double threshold) const
{
    unsigned n = 0;
    for (const auto &rec : windows(tid))
        if (rec.smoothed > threshold)
            ++n;
    return n;
}

} // namespace wb::perfmon
