/**
 * @file
 * A perf-counter-based timing-channel detector, in the style the paper
 * cites (CloudRadar, counter-ML safeguards) and argues against in
 * Sec. VII: "if a victim wants to use performance counters to detect
 * possible time-based channels, the WB channel is difficult to
 * distinguish from contention due to benign programs."
 *
 * The detector samples a core's global counters in fixed windows and
 * scores each window by the features a WB channel would plausibly
 * shift: L1 miss rate and dirty write-back rate. The experiment sweeps
 * the alarm threshold and reports detection/false-positive trade-offs
 * for the WB channel, the (louder) LRU channel, and benign workloads.
 */

#ifndef WB_PERFMON_DETECTOR_HH
#define WB_PERFMON_DETECTOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "sim/hierarchy.hh"

namespace wb::perfmon
{

/** One observation window's features. */
struct WindowFeatures
{
    double l1MissPerKcycle = 0.0;
    double writebacksPerKcycle = 0.0;
    double l2AccessPerKcycle = 0.0;
};

/** Scenario the detector observes. */
enum class Workload
{
    Idle,          //!< two spinning processes, no channel
    WbChannel,     //!< live WB covert channel (binary d=1)
    WbChannelD8,   //!< WB channel at d=8 (louder encode)
    LruChannel,    //!< LRU covert channel (continuous modulation)
    CompilerPair,  //!< two benign compiler workloads
    Streaming      //!< benign streaming workload
};

/** Human-readable workload name. */
std::string workloadName(Workload w);

/**
 * Run @p workload for `windows` windows of `windowCycles` cycles each
 * and return per-window global core features.
 */
std::vector<WindowFeatures> collectTrace(Workload workload,
                                         unsigned windows,
                                         Cycles windowCycles,
                                         std::uint64_t seed);

/** Detection outcome for one workload at one threshold. */
struct DetectionRow
{
    Workload workload;
    double alarmRate = 0.0; //!< fraction of windows above threshold
};

/**
 * Score traces with a write-back-rate threshold detector.
 *
 * @param traces per-workload window features
 * @param workloads workload label per trace
 * @param threshold alarm when writebacksPerKcycle exceeds this
 */
std::vector<DetectionRow>
thresholdDetector(const std::vector<std::vector<WindowFeatures>> &traces,
                  const std::vector<Workload> &workloads,
                  double threshold);

} // namespace wb::perfmon

#endif // WB_PERFMON_DETECTOR_HH
