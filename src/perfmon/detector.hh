/**
 * @file
 * Perf-counter timing-channel detection: window features and the
 * offline tumbling-window collector.
 *
 * The paper's Sec. VII stealth claim — "if a victim wants to use
 * performance counters to detect possible time-based channels, the WB
 * channel is difficult to distinguish from contention due to benign
 * programs" — is the CloudRadar-style counter detector this subsystem
 * models. Two collection modes share the same per-window features:
 *
 *  - **Offline** (this header): collectTrace() runs a workload pair on
 *    a quiet single-core Hierarchy and reads per-window global counter
 *    deltas after each window — the original experiment, kept as the
 *    reference the online path is proven feature-equivalent to
 *    (tests/test_detection.cc).
 *  - **Online** (perfmon/online.hh): OnlineDetector samples per-tid
 *    counter deltas live through the sim::Scheduler sampling hook
 *    while the noisy multi-core machine runs — the basis of the ROC
 *    sweeps and the detector-vs-stealth arms race
 *    (perfmon/arms_race.hh, docs/DETECTION.md).
 *
 * The thresholdDetector() here scores offline traces by write-back
 * rate alone; the online detector generalizes to a weighted score over
 * L1-miss / write-back / snoop / back-invalidation rates.
 */

#ifndef WB_PERFMON_DETECTOR_HH
#define WB_PERFMON_DETECTOR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "sim/hierarchy.hh"
#include "sim/smt_core.hh"

namespace wb::perfmon
{

/**
 * One observation window's features, as per-kilo-cycle event rates.
 * The snoop and back-invalidation rates are only charged by the
 * multi-core memory system, so single-core offline traces report them
 * as zero.
 */
struct WindowFeatures
{
    double l1MissPerKcycle = 0.0;
    double writebacksPerKcycle = 0.0;
    double l2AccessPerKcycle = 0.0;

    /** Inclusive-LLC dirty evictions (back-invalidations) per kcycle. */
    double backInvalPerKcycle = 0.0;

    /** Cross-core dirty-line snoop downgrades per kcycle. */
    double snoopPerKcycle = 0.0;
};

/**
 * Per-kcycle feature rates of a counter delta over @p windowCycles.
 * The single definition both the offline collector and the online
 * detector use, so their features agree by construction.
 */
WindowFeatures windowFeatures(const sim::PerfCounters &delta,
                              Cycles windowCycles);

/** Scenario the detector observes. */
enum class Workload
{
    Idle,          //!< two spinning processes, no channel
    WbChannel,     //!< live WB covert channel (binary d=1)
    WbChannelD8,   //!< WB channel at d=8 (louder encode)
    LruChannel,    //!< LRU covert channel (continuous modulation)
    CompilerPair,  //!< two benign compiler workloads
    Streaming      //!< benign streaming workload
};

/** Human-readable workload name. */
std::string workloadName(Workload w);

/**
 * Build @p workload's process pair and add it to @p core: the shared
 * scenario definition behind both the offline collectTrace() and the
 * online detection scenarios (perfmon/arms_race.cc), so the two paths
 * observe identical workloads. Draws the channel message bits from
 * @p bitRng (one randomBits(4096) draw regardless of workload, so the
 * downstream RNG stream does not depend on the scenario), appends the
 * owning Program pointers to @p programs, and wires the two threads as
 * AddressSpace(1)/AddressSpace(2) starting at time 0.
 *
 * @param ts slot period for the channel/spinner workloads (the offline
 *        collector uses Ts = 11000)
 */
void populateWorkload(Workload workload, sim::SmtCore &core,
                      const sim::HierarchyParams &hp,
                      const sim::AddressLayout &layout, Rng &bitRng,
                      Cycles ts,
                      std::vector<std::unique_ptr<sim::Program>> &programs);

/**
 * Offline reference collector: run @p workload on a quiet single-core
 * xeonE5-2650 Hierarchy (no scheduler, no co-runners) for `windows`
 * tumbling windows of `windowCycles` cycles each, and return per-window
 * features from totalCounters() deltas read after each window.
 */
std::vector<WindowFeatures> collectTrace(Workload workload,
                                         unsigned windows,
                                         Cycles windowCycles,
                                         std::uint64_t seed);

/** Detection outcome for one workload at one threshold. */
struct DetectionRow
{
    Workload workload;
    double alarmRate = 0.0; //!< fraction of windows above threshold
};

/**
 * Score traces with a write-back-rate threshold detector.
 *
 * @param traces per-workload window features
 * @param workloads workload label per trace
 * @param threshold alarm when writebacksPerKcycle exceeds this
 */
std::vector<DetectionRow>
thresholdDetector(const std::vector<std::vector<WindowFeatures>> &traces,
                  const std::vector<Workload> &workloads,
                  double threshold);

} // namespace wb::perfmon

#endif // WB_PERFMON_DETECTOR_HH
