#include "perfmon/metrics.hh"

namespace wb::perfmon
{

LoadFootprint
loadFootprint(const sim::PerfCounters &ctr, Cycles elapsed, double ghz)
{
    LoadFootprint fp;
    if (elapsed == 0)
        return fp;
    const double seconds =
        static_cast<double>(elapsed) / (ghz * 1e9);
    fp.l1PerSec =
        static_cast<double>(ctr.l1LoadsWithSpin() + ctr.stores) / seconds;
    fp.l2PerSec = static_cast<double>(ctr.l2Accesses) / seconds;
    fp.llcPerSec = static_cast<double>(ctr.llcAccesses) / seconds;
    fp.totalPerSec = fp.l1PerSec + fp.l2PerSec + fp.llcPerSec;
    return fp;
}

MissProfile
missProfile(const sim::PerfCounters &ctr)
{
    MissProfile mp;
    mp.l1d = ctr.l1MissRateWithSpin();
    mp.l2 = ctr.l2MissRate();
    mp.llc = ctr.llcMissRate();
    return mp;
}

} // namespace wb::perfmon
