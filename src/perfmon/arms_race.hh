/**
 * @file
 * The detector-vs-stealth arms race on the noisy multi-tenant machine.
 *
 * Three pieces, layered on the online detector (perfmon/online.hh):
 *
 *  - **Scenarios.** runDetectionScenario() stands up one live run —
 *    covert WB pair (same-core or cross-core), the louder LRU channel,
 *    or a benign tenant pair — on a platform preset with a co-runner
 *    mix from the OS-noise scheduler, watches it with an
 *    OnlineDetector, and reports the covert pair's per-window scores
 *    next to every benign tenant's (co-runners included).
 *  - **ROC.** buildRoc() pools scenario outcomes over seeds and sweeps
 *    the alarm threshold: detection rate over attack-pair windows vs
 *    false-positive rate over benign (tid, window) samples, each with
 *    a Wilson score interval, so "the detector separates them" is a
 *    bounded claim, not a point estimate (docs/DETECTION.md).
 *  - **Stealth.** runStealthSession() gives the WB sender the
 *    detector's own feedback: the message goes out in rounds, the
 *    attacker watches the pair's observed footprint after each round,
 *    and a StealthController walks the transport rate ladder
 *    (chan::rateLadder — d-shrink rungs first, then Ts doublings)
 *    until the pair sits under its score budget. The report is the
 *    paper Sec. VII argument made quantitative: what goodput does
 *    stealth cost at a given detector operating point?
 *
 * Everything is deterministic in the seed, and the detector is
 * read-only by the SampleHook contract, so an observed run transmits
 * bit-identically to an unobserved one — the arms race changes the
 * attacker's choices, never the channel physics.
 */

#ifndef WB_PERFMON_ARMS_RACE_HH
#define WB_PERFMON_ARMS_RACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "defense/defense.hh"
#include "perfmon/online.hh"

namespace wb::perfmon
{

/**
 * Wilson score interval for @p successes out of @p trials at critical
 * value @p z (default 2.576, ~99% two-sided). The src-side twin of the
 * test-side helper in tests/stat_assert.hh: experiment tables must
 * print the same bounds the tests assert on.
 */
struct WilsonInterval
{
    double lo = 0.0;
    double hi = 1.0;
};

WilsonInterval wilsonInterval(unsigned successes, unsigned trials,
                              double z = 2.576);

/** What runs on the machine while the detector watches. */
enum class DetectionScenario
{
    IdlePair,      //!< two spinners (benign)
    CompilerPair,  //!< two compiler workloads (benign)
    StreamingPair, //!< streaming + spinner (benign)
    WbChannel,     //!< same-core WB channel, binary d=1
    WbChannelD8,   //!< same-core WB channel, binary d=8 (louder)
    LruChannel,    //!< LRU covert channel (the loud baseline)
    CrossCoreWb    //!< cross-core WB channel over the inclusive LLC
};

/** Human-readable scenario name. */
const char *scenarioName(DetectionScenario s);

/** True for the covert-channel scenarios. */
bool scenarioIsAttack(DetectionScenario s);

/** Arms-race experiment configuration. */
struct ArmsRaceConfig
{
    /** Platform registry preset (needs >= 2 cores for CrossCoreWb). */
    std::string platformName = "desktop-inclusive-4core";

    /** Co-runner count, expanded via SchedulerConfig::mixOf(). */
    unsigned coRunners = 3;

    OnlineDetectorConfig detector;

    /** Slot period of the same-core channels and benign spinners. */
    Cycles ts = 5500;

    /** Frame repetitions / frame bits of the WB transmissions. */
    unsigned frames = 2;
    unsigned frameBits = 64;

    /** Observation windows for the detection-only (benign/LRU) runs. */
    unsigned benignWindows = 40;

    std::uint64_t seed = 1;

    /**
     * Defense applied to the same-core WB scenarios (None by
     * default). The defense ROC-shift tables rerun WbChannel under
     * each spec and compare detection rates at a fixed FPR.
     */
    defense::DefenseSpec defense;
};

/** One watched run's outcome. */
struct ScenarioOutcome
{
    DetectionScenario scenario = DetectionScenario::IdlePair;
    bool isAttack = false;

    ThreadId senderTid = 0;   //!< covert pair (attack scenarios)
    ThreadId receiverTid = 0;

    /**
     * Transmission quality of the WB scenarios; -1 for the
     * detection-only runs (benign pairs and the LRU baseline, whose
     * decode quality is not the question here).
     */
    double ber = -1.0;
    double goodputKbps = 0.0;

    unsigned windows = 0; //!< detector windows observed

    /**
     * Per-window smoothed score of the covert pair, max over the two
     * party tids (colluding parties are as loud as their louder half);
     * empty for benign scenarios.
     */
    std::vector<double> pairSmoothed;

    /**
     * Smoothed scores of every benign (tid, window) sample: all
     * monitored tids except the covert pair (and the OS tid). In
     * benign scenarios that includes the tenant pair itself.
     */
    std::vector<double> benignSmoothed;
};

/**
 * Run one scenario under @p cfg with run seed @p seed (the config's
 * co-runner mix, platform and detector settings; a fresh
 * OnlineDetector per run).
 */
ScenarioOutcome runDetectionScenario(const ArmsRaceConfig &cfg,
                                     DetectionScenario scenario,
                                     std::uint64_t seed);

/** One threshold's pooled operating point. */
struct RocPoint
{
    double threshold = 0.0;

    unsigned attackWindows = 0; //!< pooled attack-pair windows
    unsigned attackAlarms = 0;  //!< of which scored above threshold
    unsigned benignSamples = 0; //!< pooled benign (tid, window) samples
    unsigned benignAlarms = 0;  //!< of which scored above threshold

    double detectRate = 0.0; //!< attackAlarms / attackWindows
    WilsonInterval detect;   //!< its Wilson interval
    double fpr = 0.0;        //!< benignAlarms / benignSamples
    WilsonInterval fp;       //!< its Wilson interval
};

/**
 * Pool @p outcomes (attack and benign runs, any number of seeds) and
 * score every threshold: attack detection from pairSmoothed, false
 * positives from benignSmoothed of *all* runs — co-runners sharing a
 * machine with a live channel are benign tenants too.
 */
std::vector<RocPoint> buildRoc(const std::vector<ScenarioOutcome> &outcomes,
                               const std::vector<double> &thresholds);

/** Stealth-session knobs. */
struct StealthConfig
{
    /**
     * Footprint budget as a fraction of the detector threshold: the
     * attacker throttles until the pair's peak smoothed score stays
     * under budgetFraction * detector.threshold. Under 1.0 leaves
     * headroom for windows the attacker has not seen yet.
     */
    double budgetFraction = 0.8;

    unsigned rounds = 10;       //!< transmission rounds
    unsigned maxDoublings = 3;  //!< Ts-doubling rungs in the ladder
    unsigned signalShrinks = 3; //!< d-shrink rungs in the ladder

    /**
     * Slot period of the session's loud starting rung. The default is
     * twice the scenario rate (Ts = 2750 against the scenarios' 5500):
     * greedy attackers start fast — on the desktop preset that puts
     * the pair's peak near 2.0, well over any sane budget — and let
     * the controller walk them down.
     */
    Cycles startTs = 2750;

    /** Consecutive under-budget rounds before stepping back up. */
    unsigned quietRoundsToUpgrade = 3;
};

/** One stealth round's telemetry. */
struct StealthRound
{
    unsigned rung = 0;       //!< ladder rung used this round
    Cycles ts = 0;           //!< its slot period
    unsigned d = 0;          //!< its dirty-line level
    double ber = 1.0;
    double pairPeak = 0.0;   //!< pair's peak smoothed score
    bool overBudget = false;
    Cycles simulatedCycles = 0;
    std::uint64_t payloadBits = 0;
    std::uint64_t correctBits = 0;
};

/** A whole stealth session's outcome. */
struct StealthOutcome
{
    std::vector<StealthRound> rounds;
    unsigned finalRung = 0;

    std::uint64_t bitsTotal = 0;   //!< pooled payload bits
    std::uint64_t bitsCorrect = 0; //!< pooled correct payload bits

    /** Pooled goodput: correct payload bits over summed run time. */
    double goodputKbps = 0.0;

    /** Peak pair score over the settled (post-adaptation) half. */
    double settledPeak = 0.0;
};

/**
 * Run the adaptive-stealth WB session: cfg.frames x (frameBits - 16)
 * payload bits per round on the same-core channel (starting from the
 * loud binary(8) encode so the d-shrink rungs have room to work), a
 * fresh detector watching every round, and the controller stepping
 * down the rate ladder whenever the pair's observed peak exceeds the
 * budget — the attacker reacting to exactly the signal the defender
 * scores. Deterministic in cfg.seed (round r runs under a seed derived
 * from it).
 */
StealthOutcome runStealthSession(const ArmsRaceConfig &cfg,
                                 const StealthConfig &stealth);

} // namespace wb::perfmon

#endif // WB_PERFMON_ARMS_RACE_HH
