/**
 * @file
 * Offline stealth experiments (paper Sec. VII, Tables VI and VII):
 * the WB sender's perf-visible footprint compared with the LRU
 * channel's sender and with benign co-runners, measured post-hoc on
 * the quiet single-core machine — the paper's own methodology,
 * preserved as a reference.
 *
 * The live version of this question — an online per-tid detector
 * watching noisy multi-core scheduler runs, ROC curves, and the
 * adaptive sender that throttles against its own observed footprint —
 * lives in perfmon/online.hh and perfmon/arms_race.hh
 * (docs/DETECTION.md).
 */

#ifndef WB_PERFMON_STEALTH_HH
#define WB_PERFMON_STEALTH_HH

#include <cstdint>

#include "perfmon/metrics.hh"

namespace wb::perfmon
{

/** Table VI: sender load footprints of the WB and LRU channels. */
struct FootprintComparison
{
    LoadFootprint wb;   //!< WB sender (binary, one store per bit)
    LoadFootprint lru;  //!< LRU sender (whole-slot modulation)
    double ratio = 0.0; //!< wb.total / lru.total (paper: 59.8%)
};

/**
 * Run both channels at the given period and compare sender footprints.
 * @param ts slot period in cycles (paper Table VI uses Ts = 11000)
 * @param frames frames transmitted per channel
 * @param seed run seed
 */
FootprintComparison compareSenderFootprints(Cycles ts, unsigned frames,
                                            std::uint64_t seed);

/** Which co-runner shares the core with the WB sender (Table VII). */
enum class CoRunner
{
    WbReceiver, //!< the real WB channel receiver
    Compiler,   //!< benign g++-like workload
    None        //!< sender alone on the core
};

/**
 * Table VII: the WB sender's miss profile under a given co-runner.
 *
 * @param coRunner who shares the physical core
 * @param multiBit use the 2-bit {0,3,5,8} encoding instead of binary
 * @param ts slot period
 * @param bits number of message bits the sender modulates
 * @param seed run seed
 */
MissProfile senderMissProfile(CoRunner coRunner, bool multiBit, Cycles ts,
                              unsigned bits, std::uint64_t seed);

} // namespace wb::perfmon

#endif // WB_PERFMON_STEALTH_HH
