#include "perfmon/detector.hh"

#include <memory>

#include "baselines/lru_channel.hh"
#include "chan/protocol.hh"
#include "chan/receiver.hh"
#include "chan/sender.hh"
#include "chan/set_mapping.hh"
#include "common/bitvec.hh"
#include "perfmon/workloads.hh"
#include "sim/smt_core.hh"

namespace wb::perfmon
{

namespace
{

/** A process that only busy-waits (periodic wakeups, no data work). */
class Spinner : public sim::Program
{
  public:
    explicit Spinner(Cycles period) : period_(period) {}

    std::optional<sim::MemOp>
    next(sim::ProcView &) override
    {
        if (!started_) {
            started_ = true;
            return sim::MemOp::tscRead();
        }
        return sim::MemOp::spinUntil(tlast_ + period_);
    }

    void
    onResult(const sim::MemOp &, const sim::OpResult &res,
             sim::ProcView &) override
    {
        tlast_ = res.tsc;
    }

  private:
    Cycles period_;
    Cycles tlast_ = 0;
    bool started_ = false;
};

} // namespace

std::string
workloadName(Workload w)
{
    switch (w) {
      case Workload::Idle:
        return "idle spinners";
      case Workload::WbChannel:
        return "WB channel (d=1)";
      case Workload::WbChannelD8:
        return "WB channel (d=8)";
      case Workload::LruChannel:
        return "LRU channel";
      case Workload::CompilerPair:
        return "2x compiler (benign)";
      case Workload::Streaming:
        return "streaming (benign)";
    }
    return "?";
}

std::vector<WindowFeatures>
collectTrace(Workload workload, unsigned windows, Cycles windowCycles,
             std::uint64_t seed)
{
    Rng rng(seed);
    sim::HierarchyParams hp = sim::xeonE5_2650Params();
    sim::NoiseModel noise;
    sim::Hierarchy hierarchy(hp, &rng);
    sim::SmtCore core(hierarchy, noise, rng);
    const auto &layout = hierarchy.l1().layout();
    const Cycles ts = 11000;

    // Owning storage for whichever programs the scenario needs.
    std::vector<std::unique_ptr<sim::Program>> programs;
    Rng bitRng = rng.split();
    const BitVec bits = randomBits(4096, bitRng);

    auto addWbPair = [&](unsigned d) {
        const auto sets = chan::makeChannelSets(layout, 13, hp.l1.ways,
                                                10);
        std::vector<unsigned> levels;
        for (bool b : bits)
            levels.push_back(b ? d : 0);
        programs.push_back(std::make_unique<chan::SenderProgram>(
            sets.senderLines, levels, ts));
        core.addThread(programs.back().get(), sim::AddressSpace(1), 0);
        programs.push_back(std::make_unique<chan::ReceiverProgram>(
            sets.replacementA, sets.replacementB, ts, bits.size() + 64));
        core.addThread(programs.back().get(), sim::AddressSpace(2), 0);
    };

    switch (workload) {
      case Workload::Idle:
        programs.push_back(std::make_unique<Spinner>(ts));
        core.addThread(programs.back().get(), sim::AddressSpace(1), 0);
        programs.push_back(std::make_unique<Spinner>(ts));
        core.addThread(programs.back().get(), sim::AddressSpace(2), 0);
        break;
      case Workload::WbChannel:
        addWbPair(1);
        break;
      case Workload::WbChannelD8:
        addWbPair(8);
        break;
      case Workload::LruChannel: {
        auto rxLines = chan::linesForSet(layout, 13, hp.l1.ways, 0x100);
        auto txLines = chan::linesForSet(layout, 13, 1, 1);
        programs.push_back(std::make_unique<baselines::LruSender>(
            txLines[0], bits, ts, /*modulateCycles=*/0));
        core.addThread(programs.back().get(), sim::AddressSpace(1), 0);
        programs.push_back(std::make_unique<baselines::LruReceiver>(
            rxLines, ts, bits.size() + 64));
        core.addThread(programs.back().get(), sim::AddressSpace(2), 0);
        break;
      }
      case Workload::CompilerPair:
        programs.push_back(std::make_unique<CompilerWorkload>());
        core.addThread(programs.back().get(), sim::AddressSpace(1), 0);
        programs.push_back(std::make_unique<CompilerWorkload>());
        core.addThread(programs.back().get(), sim::AddressSpace(2), 0);
        break;
      case Workload::Streaming:
        programs.push_back(std::make_unique<StreamingWorkload>());
        core.addThread(programs.back().get(), sim::AddressSpace(1), 0);
        programs.push_back(std::make_unique<Spinner>(ts));
        core.addThread(programs.back().get(), sim::AddressSpace(2), 0);
        break;
    }

    std::vector<WindowFeatures> out;
    out.reserve(windows);
    sim::PerfCounters prev = hierarchy.totalCounters();
    for (unsigned w = 1; w <= windows; ++w) {
        core.run(Cycles(w) * windowCycles);
        const sim::PerfCounters now = hierarchy.totalCounters();
        WindowFeatures f;
        const double kc = double(windowCycles) / 1000.0;
        f.l1MissPerKcycle = double(now.l1Misses - prev.l1Misses) / kc;
        f.writebacksPerKcycle =
            double(now.l1DirtyWritebacks - prev.l1DirtyWritebacks) / kc;
        f.l2AccessPerKcycle =
            double(now.l2Accesses - prev.l2Accesses) / kc;
        out.push_back(f);
        prev = now;
    }
    return out;
}

std::vector<DetectionRow>
thresholdDetector(const std::vector<std::vector<WindowFeatures>> &traces,
                  const std::vector<Workload> &workloads,
                  double threshold)
{
    std::vector<DetectionRow> rows;
    for (std::size_t i = 0; i < traces.size(); ++i) {
        DetectionRow row;
        row.workload = workloads.at(i);
        unsigned alarms = 0;
        for (const auto &f : traces[i])
            if (f.writebacksPerKcycle > threshold)
                ++alarms;
        row.alarmRate = traces[i].empty()
            ? 0.0
            : double(alarms) / double(traces[i].size());
        rows.push_back(row);
    }
    return rows;
}

} // namespace wb::perfmon
