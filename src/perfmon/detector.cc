#include "perfmon/detector.hh"

#include <memory>

#include "baselines/lru_channel.hh"
#include "chan/protocol.hh"
#include "chan/receiver.hh"
#include "chan/sender.hh"
#include "chan/set_mapping.hh"
#include "common/bitvec.hh"
#include "perfmon/workloads.hh"
#include "sim/smt_core.hh"

namespace wb::perfmon
{

WindowFeatures
windowFeatures(const sim::PerfCounters &delta, Cycles windowCycles)
{
    WindowFeatures f;
    const double kc = double(windowCycles) / 1000.0;
    f.l1MissPerKcycle = double(delta.l1Misses) / kc;
    f.writebacksPerKcycle = double(delta.l1DirtyWritebacks) / kc;
    f.l2AccessPerKcycle = double(delta.l2Accesses) / kc;
    f.backInvalPerKcycle = double(delta.llcDirtyEvictions) / kc;
    f.snoopPerKcycle = double(delta.crossCoreSnoops) / kc;
    return f;
}

std::string
workloadName(Workload w)
{
    switch (w) {
      case Workload::Idle:
        return "idle spinners";
      case Workload::WbChannel:
        return "WB channel (d=1)";
      case Workload::WbChannelD8:
        return "WB channel (d=8)";
      case Workload::LruChannel:
        return "LRU channel";
      case Workload::CompilerPair:
        return "2x compiler (benign)";
      case Workload::Streaming:
        return "streaming (benign)";
    }
    return "?";
}

void
populateWorkload(Workload workload, sim::SmtCore &core,
                 const sim::HierarchyParams &hp,
                 const sim::AddressLayout &layout, Rng &bitRng, Cycles ts,
                 std::vector<std::unique_ptr<sim::Program>> &programs)
{
    const BitVec bits = randomBits(4096, bitRng);

    auto addWbPair = [&](unsigned d) {
        const auto sets = chan::makeChannelSets(layout, 13, hp.l1.ways,
                                                10);
        std::vector<unsigned> levels;
        for (bool b : bits)
            levels.push_back(b ? d : 0);
        programs.push_back(std::make_unique<chan::SenderProgram>(
            sets.senderLines, levels, ts));
        core.addThread(programs.back().get(), sim::AddressSpace(1), 0);
        programs.push_back(std::make_unique<chan::ReceiverProgram>(
            sets.replacementA, sets.replacementB, ts, bits.size() + 64));
        core.addThread(programs.back().get(), sim::AddressSpace(2), 0);
    };

    switch (workload) {
      case Workload::Idle:
        programs.push_back(std::make_unique<Spinner>(ts));
        core.addThread(programs.back().get(), sim::AddressSpace(1), 0);
        programs.push_back(std::make_unique<Spinner>(ts));
        core.addThread(programs.back().get(), sim::AddressSpace(2), 0);
        break;
      case Workload::WbChannel:
        addWbPair(1);
        break;
      case Workload::WbChannelD8:
        addWbPair(8);
        break;
      case Workload::LruChannel: {
        auto rxLines = chan::linesForSet(layout, 13, hp.l1.ways, 0x100);
        auto txLines = chan::linesForSet(layout, 13, 1, 1);
        programs.push_back(std::make_unique<baselines::LruSender>(
            txLines[0], bits, ts, /*modulateCycles=*/0));
        core.addThread(programs.back().get(), sim::AddressSpace(1), 0);
        programs.push_back(std::make_unique<baselines::LruReceiver>(
            rxLines, ts, bits.size() + 64));
        core.addThread(programs.back().get(), sim::AddressSpace(2), 0);
        break;
      }
      case Workload::CompilerPair:
        programs.push_back(std::make_unique<CompilerWorkload>());
        core.addThread(programs.back().get(), sim::AddressSpace(1), 0);
        programs.push_back(std::make_unique<CompilerWorkload>());
        core.addThread(programs.back().get(), sim::AddressSpace(2), 0);
        break;
      case Workload::Streaming:
        programs.push_back(std::make_unique<StreamingWorkload>());
        core.addThread(programs.back().get(), sim::AddressSpace(1), 0);
        programs.push_back(std::make_unique<Spinner>(ts));
        core.addThread(programs.back().get(), sim::AddressSpace(2), 0);
        break;
    }
}

std::vector<WindowFeatures>
collectTrace(Workload workload, unsigned windows, Cycles windowCycles,
             std::uint64_t seed)
{
    Rng rng(seed);
    sim::HierarchyParams hp = sim::xeonE5_2650Params();
    sim::NoiseModel noise;
    sim::Hierarchy hierarchy(hp, &rng);
    sim::SmtCore core(hierarchy, noise, rng);
    const auto &layout = hierarchy.l1().layout();
    const Cycles ts = 11000;

    // Owning storage for whichever programs the scenario needs.
    std::vector<std::unique_ptr<sim::Program>> programs;
    Rng bitRng = rng.split();
    populateWorkload(workload, core, hp, layout, bitRng, ts, programs);

    std::vector<WindowFeatures> out;
    out.reserve(windows);
    sim::PerfCounters prev = hierarchy.totalCounters();
    for (unsigned w = 1; w <= windows; ++w) {
        core.run(Cycles(w) * windowCycles);
        const sim::PerfCounters now = hierarchy.totalCounters();
        sim::PerfCounters delta = now;
        delta.subtract(prev);
        out.push_back(windowFeatures(delta, windowCycles));
        prev = now;
    }
    return out;
}

std::vector<DetectionRow>
thresholdDetector(const std::vector<std::vector<WindowFeatures>> &traces,
                  const std::vector<Workload> &workloads,
                  double threshold)
{
    std::vector<DetectionRow> rows;
    for (std::size_t i = 0; i < traces.size(); ++i) {
        DetectionRow row;
        row.workload = workloads.at(i);
        unsigned alarms = 0;
        for (const auto &f : traces[i])
            if (f.writebacksPerKcycle > threshold)
                ++alarms;
        row.alarmRate = traces[i].empty()
            ? 0.0
            : double(alarms) / double(traces[i].size());
        rows.push_back(row);
    }
    return rows;
}

} // namespace wb::perfmon
