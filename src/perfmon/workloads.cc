#include "perfmon/workloads.hh"

namespace wb::perfmon
{

namespace
{

/** Cheap deterministic per-program PRNG step (xorshift64). */
std::uint64_t
xorshift(std::uint64_t &s)
{
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
}

} // namespace

CompilerWorkload::CompilerWorkload() : CompilerWorkload(Params{})
{
}

CompilerWorkload::CompilerWorkload(const Params &params) : params_(params)
{
}

std::optional<sim::MemOp>
CompilerWorkload::next(sim::ProcView &)
{
    if (walking_) {
        const std::uint64_t r = xorshift(walkState_);
        const Addr va =
            0x1000000 + (r % params_.walkLines) * lineBytes;
        const bool store =
            (static_cast<double>((r >> 32) & 0xffff) / 65536.0) <
            params_.storeFraction;
        return store ? sim::MemOp::store(va) : sim::MemOp::load(va);
    }
    const Addr va =
        0x2000000 + (streamPos_ % params_.streamLines) * lineBytes;
    ++streamPos_;
    return sim::MemOp::pipelinedLoad(va);
}

void
CompilerWorkload::onResult(const sim::MemOp &, const sim::OpResult &,
                           sim::ProcView &)
{
    ++burstPos_;
    const unsigned limit =
        walking_ ? params_.walkBurst : params_.streamBurst;
    if (burstPos_ >= limit) {
        burstPos_ = 0;
        walking_ = !walking_;
    }
}

} // namespace wb::perfmon
