#include "perfmon/arms_race.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>

#include "chan/channel.hh"
#include "chan/cross_core.hh"
#include "chan/transport.hh"
#include "common/log.hh"
#include "perfmon/detector.hh"
#include "sim/hierarchy.hh"
#include "sim/platform.hh"
#include "sim/scheduler.hh"

namespace wb::perfmon
{

WilsonInterval
wilsonInterval(unsigned successes, unsigned trials, double z)
{
    WilsonInterval iv;
    if (trials == 0)
        return iv;
    const double n = double(trials);
    const double p = double(successes) / n;
    const double z2 = z * z;
    const double denom = 1.0 + z2 / n;
    const double center = p + z2 / (2.0 * n);
    const double margin =
        z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
    iv.lo = std::max(0.0, (center - margin) / denom);
    iv.hi = std::min(1.0, (center + margin) / denom);
    return iv;
}

const char *
scenarioName(DetectionScenario s)
{
    switch (s) {
      case DetectionScenario::IdlePair:
        return "idle pair (benign)";
      case DetectionScenario::CompilerPair:
        return "2x compiler (benign)";
      case DetectionScenario::StreamingPair:
        return "streaming (benign)";
      case DetectionScenario::WbChannel:
        return "WB channel (d=1)";
      case DetectionScenario::WbChannelD8:
        return "WB channel (d=8)";
      case DetectionScenario::LruChannel:
        return "LRU channel";
      case DetectionScenario::CrossCoreWb:
        return "cross-core WB";
    }
    return "?";
}

bool
scenarioIsAttack(DetectionScenario s)
{
    switch (s) {
      case DetectionScenario::WbChannel:
      case DetectionScenario::WbChannelD8:
      case DetectionScenario::LruChannel:
      case DetectionScenario::CrossCoreWb:
        return true;
      default:
        return false;
    }
}

namespace
{

/**
 * Read the detector into an outcome: the covert pair's per-window max
 * smoothed score (aligned by window boundary — under timeslicing one
 * party can enter the monitored set a window later than the other) and
 * every other monitored tid's samples as benign.
 */
void
fillOutcome(const OnlineDetector &det, ScenarioOutcome &out)
{
    out.windows = det.windowCount();
    if (out.isAttack) {
        std::map<Cycles, double> byEnd;
        for (ThreadId tid : {out.senderTid, out.receiverTid}) {
            for (const WindowRecord &rec : det.windows(tid)) {
                auto [it, fresh] = byEnd.emplace(rec.end, rec.smoothed);
                if (!fresh)
                    it->second = std::max(it->second, rec.smoothed);
            }
        }
        for (const auto &kv : byEnd)
            out.pairSmoothed.push_back(kv.second);
    }
    for (ThreadId tid : det.tids()) {
        if (out.isAttack &&
            (tid == out.senderTid || tid == out.receiverTid))
            continue;
        for (const WindowRecord &rec : det.windows(tid))
            out.benignSmoothed.push_back(rec.smoothed);
    }
}

/** The base same-core channel config of an arms-race experiment. */
chan::ChannelConfig
sameCoreConfig(const ArmsRaceConfig &cfg, unsigned d, std::uint64_t seed)
{
    chan::ChannelConfig ch;
    ch.usePlatform(cfg.platformName);
    ch.protocol.ts = ch.protocol.tr = cfg.ts;
    ch.protocol.frames = cfg.frames;
    ch.protocol.frameBits = cfg.frameBits;
    ch.protocol.encoding = chan::Encoding::binary(d);
    ch.seed = seed;
    ch = defense::applyDefense(ch, cfg.defense);
    ch.scheduler.coRunners = sim::SchedulerConfig::mixOf(cfg.coRunners);
    return ch;
}

/** Same-core WB scenario: run the real channel, watched. */
ScenarioOutcome
runWbScenario(const ArmsRaceConfig &cfg, DetectionScenario scenario,
              unsigned d, std::uint64_t seed)
{
    chan::ChannelConfig ch = sameCoreConfig(cfg, d, seed);
    OnlineDetector det(cfg.detector);
    det.attach(ch.scheduler);
    const chan::ChannelResult res = chan::runChannel(ch);

    ScenarioOutcome out;
    out.scenario = scenario;
    out.isAttack = true;
    out.senderTid = res.senderTid;
    out.receiverTid = res.receiverTid;
    out.ber = res.ber;
    out.goodputKbps = res.goodputKbps;
    fillOutcome(det, out);
    return out;
}

/** Cross-core WB scenario over the shared inclusive LLC. */
ScenarioOutcome
runCrossCoreScenario(const ArmsRaceConfig &cfg, std::uint64_t seed)
{
    chan::CrossCoreChannelConfig ch;
    ch.usePlatform(cfg.platformName);
    ch.protocol.frames = cfg.frames;
    ch.seed = seed;
    ch.scheduler.coRunners = sim::SchedulerConfig::mixOf(cfg.coRunners);
    OnlineDetector det(cfg.detector);
    det.attach(ch.scheduler);
    const chan::ChannelResult res = chan::runCrossCoreChannel(ch);

    ScenarioOutcome out;
    out.scenario = DetectionScenario::CrossCoreWb;
    out.isAttack = true;
    out.senderTid = res.senderTid;
    out.receiverTid = res.receiverTid;
    out.ber = res.ber;
    out.goodputKbps = res.goodputKbps;
    fillOutcome(det, out);
    return out;
}

/**
 * Detection-only scenarios (benign pairs, LRU baseline): the shared
 * perfmon workload definitions run under the scheduler on core 0 for
 * cfg.benignWindows windows, no decode.
 */
ScenarioOutcome
runWatchedPair(const ArmsRaceConfig &cfg, DetectionScenario scenario,
               Workload workload, std::uint64_t seed)
{
    const sim::Platform &plat = sim::platform(cfg.platformName);
    Rng rng(seed);
    sim::Hierarchy hierarchy(plat.params, &rng);

    sim::SchedulerConfig sc;
    sc.coRunners = sim::SchedulerConfig::mixOf(cfg.coRunners);
    OnlineDetector det(cfg.detector);
    det.attach(sc);

    sim::Scheduler sched(static_cast<sim::MemorySystem &>(hierarchy),
                         plat.noise, rng, sc, seed);
    sim::SmtCore &core = sched.party(0);
    const auto &layout = hierarchy.l1().layout();

    std::vector<std::unique_ptr<sim::Program>> programs;
    Rng bitRng = rng.split();
    populateWorkload(workload, core, plat.params, layout, bitRng, cfg.ts,
                     programs);

    sched.run(Cycles(cfg.benignWindows) * cfg.detector.windowCycles);

    ScenarioOutcome out;
    out.scenario = scenario;
    out.isAttack = scenarioIsAttack(scenario);
    // party(0) is the first front-end: its two threads get tids 0, 1.
    out.senderTid = 0;
    out.receiverTid = 1;
    fillOutcome(det, out);
    return out;
}

} // namespace

ScenarioOutcome
runDetectionScenario(const ArmsRaceConfig &cfg, DetectionScenario scenario,
                     std::uint64_t seed)
{
    switch (scenario) {
      case DetectionScenario::WbChannel:
        return runWbScenario(cfg, scenario, 1, seed);
      case DetectionScenario::WbChannelD8:
        return runWbScenario(cfg, scenario, 8, seed);
      case DetectionScenario::CrossCoreWb:
        return runCrossCoreScenario(cfg, seed);
      case DetectionScenario::IdlePair:
        return runWatchedPair(cfg, scenario, Workload::Idle, seed);
      case DetectionScenario::CompilerPair:
        return runWatchedPair(cfg, scenario, Workload::CompilerPair, seed);
      case DetectionScenario::StreamingPair:
        return runWatchedPair(cfg, scenario, Workload::Streaming, seed);
      case DetectionScenario::LruChannel:
        return runWatchedPair(cfg, scenario, Workload::LruChannel, seed);
    }
    fatalf("runDetectionScenario: unknown scenario");
    return {};
}

std::vector<RocPoint>
buildRoc(const std::vector<ScenarioOutcome> &outcomes,
         const std::vector<double> &thresholds)
{
    std::vector<RocPoint> roc;
    roc.reserve(thresholds.size());
    for (double thr : thresholds) {
        RocPoint pt;
        pt.threshold = thr;
        for (const ScenarioOutcome &o : outcomes) {
            for (double s : o.pairSmoothed) {
                ++pt.attackWindows;
                if (s > thr)
                    ++pt.attackAlarms;
            }
            for (double s : o.benignSmoothed) {
                ++pt.benignSamples;
                if (s > thr)
                    ++pt.benignAlarms;
            }
        }
        pt.detectRate = pt.attackWindows
            ? double(pt.attackAlarms) / double(pt.attackWindows)
            : 0.0;
        pt.detect = wilsonInterval(pt.attackAlarms, pt.attackWindows);
        pt.fpr = pt.benignSamples
            ? double(pt.benignAlarms) / double(pt.benignSamples)
            : 0.0;
        pt.fp = wilsonInterval(pt.benignAlarms, pt.benignSamples);
        roc.push_back(pt);
    }
    return roc;
}

StealthOutcome
runStealthSession(const ArmsRaceConfig &cfg, const StealthConfig &stealth)
{
    // Start loud — binary(8) at the fast stealth.startTs — so the
    // d-shrink rungs have room to buy footprint before the ladder
    // starts paying with time.
    chan::ChannelConfig base = sameCoreConfig(cfg, 8, cfg.seed);
    base.protocol.ts = base.protocol.tr = stealth.startTs;
    const std::vector<chan::RateStep> ladder = chan::rateLadder(
        base.protocol, stealth.maxDoublings, stealth.signalShrinks);
    const double budget =
        stealth.budgetFraction * cfg.detector.threshold;
    const unsigned payloadPerRound =
        cfg.frames * (cfg.frameBits >= 16 ? cfg.frameBits - 16 : 0);

    StealthOutcome out;
    Cycles totalCycles = 0;
    unsigned level = 0;
    unsigned quietStreak = 0;
    // A rung observed over budget is burned: the controller never
    // climbs back onto it, so the session converges to the fastest
    // rung that stays under budget instead of oscillating.
    std::vector<bool> burned(ladder.size(), false);

    for (unsigned r = 0; r < stealth.rounds; ++r) {
        const chan::RateStep &rung = ladder[level];
        chan::ChannelConfig round = base;
        // Per-round seed: rounds are independent transmissions of the
        // session, deterministic in cfg.seed.
        round.seed = cfg.seed + 0x9e3779b97f4a7c15ULL * (r + 1);
        // Ts only ever doubles along the ladder, so the Tr:Ts ratio
        // survives the integer arithmetic exactly (see rateLadder).
        round.protocol.tr =
            base.protocol.tr * (rung.ts / base.protocol.ts);
        round.protocol.ts = rung.ts;
        round.protocol.encoding = rung.encoding;

        OnlineDetector det(cfg.detector);
        det.attach(round.scheduler);
        const chan::ChannelResult res = chan::runChannel(round);

        StealthRound rr;
        rr.rung = level;
        rr.ts = rung.ts;
        rr.d = rung.encoding.maxLevel();
        rr.ber = res.ber;
        rr.pairPeak = std::max(det.peakSmoothed(res.senderTid),
                               det.peakSmoothed(res.receiverTid));
        rr.overBudget = rr.pairPeak > budget;
        rr.simulatedCycles = res.simulatedCycles;
        rr.payloadBits = payloadPerRound;
        rr.correctBits = std::uint64_t(
            (1.0 - std::min(1.0, res.ber)) * double(payloadPerRound) +
            0.5);
        out.rounds.push_back(rr);

        out.bitsTotal += rr.payloadBits;
        out.bitsCorrect += rr.correctBits;
        totalCycles += rr.simulatedCycles;
        if (r >= stealth.rounds / 2)
            out.settledPeak = std::max(out.settledPeak, rr.pairPeak);

        if (rr.overBudget) {
            burned[level] = true;
            quietStreak = 0;
            if (level + 1 < ladder.size())
                ++level;
        } else {
            ++quietStreak;
            if (quietStreak >= stealth.quietRoundsToUpgrade &&
                level > 0 && !burned[level - 1]) {
                --level;
                quietStreak = 0;
            }
        }
    }
    out.finalRung = level;
    if (totalCycles > 0)
        out.goodputKbps = double(out.bitsCorrect) *
                          base.protocol.cpuGhz * 1e6 /
                          double(totalCycles);
    return out;
}

} // namespace wb::perfmon
