#include "sidechan/victim.hh"

#include "chan/set_mapping.hh"
#include "common/log.hh"

namespace wb::sidechan
{

Victim::Victim(sim::MemorySystem &mem, const sim::AddressLayout &layout,
               sim::AddressSpace space, GadgetKind kind, unsigned setM,
               unsigned setN, unsigned serialLines,
               const sim::NoiseModel &noise)
    : mem_(mem), space_(space), kind_(kind),
      serialLines_(serialLines == 0 ? 1 : serialLines), noise_(noise)
{
    linesM_ = chan::linesForSet(layout, setM, serialLines_,
                                /*tagBase=*/0x40);
    linesN_ = chan::linesForSet(layout, setN, serialLines_,
                                /*tagBase=*/0x50);
}

Cycles
Victim::run(bool secret)
{
    const std::vector<Addr> &lines = secret ? linesM_ : linesN_;
    const bool isWrite = secret && kind_ == GadgetKind::StoreBranch;
    const auto batch = mem_.accessBatch(tid, space_, lines, isWrite);
    return batch.totalLatency + noise_.opOverhead * batch.accesses;
}

} // namespace wb::sidechan
