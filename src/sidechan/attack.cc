#include "sidechan/attack.hh"

#include <algorithm>
#include <memory>
#include <optional>

#include "chan/calibration.hh"
#include "chan/pointer_chase.hh"
#include "chan/set_mapping.hh"
#include "common/log.hh"
#include "common/stats.hh"
#include "sim/multicore.hh"

namespace wb::sidechan
{

namespace
{

constexpr ThreadId attackerTid = 0;

/** Call-overhead dispersion when timing a whole victim invocation. */
constexpr double victimCallSigma = 10.0;

/** The attacker's working state for one experiment. */
struct AttackerCtx
{
    sim::MemorySystem *mem; //!< rebindable: migration moves the port
    sim::AddressSpace space;
    sim::NoiseModel noise;
    std::vector<Addr> dirtyLines;   //!< attacker lines it can dirty
    chan::PointerChase chaseA;      //!< probe sets for set m
    chan::PointerChase chaseB;
    bool useA = true;
    Rng &rng;

    /** Timed replacement of set m (alternating replacement sets). */
    double
    probe()
    {
        chan::PointerChase &chase = useA ? chaseA : chaseB;
        chase.reshuffle(rng);
        useA = !useA;
        double lat = chan::measureChaseOffline(
            *mem, attackerTid, space, chase.order(), noise);
        if (noise.measBaseSigma > 0.0)
            lat += rng.gaussian(0.0, noise.measBaseSigma);
        // Attacker-visible time goes through the observer choke point
        // too: a sandboxed attacker cannot time the probe any finer
        // than its timer allows (no-op for the default observer).
        return noise.observeDuration(lat, rng);
    }

    /** Dirty d attacker lines in set m (prime for scenario 2/3). */
    void
    dirtyPrime(unsigned d)
    {
        const std::size_t n =
            std::min<std::size_t>(d, dirtyLines.size());
        mem->accessBatch(attackerTid, space, dirtyLines.data(), n,
                         /*isWrite=*/true);
    }
};

/**
 * Per-trial OS-noise for the offline attack loop: co-runner bursts on
 * their cores, OS pollution on the attacker's core, and periodic
 * attacker migration (cross-core). A deterministic re-expression of
 * the Scheduler's regime at trial granularity.
 */
struct TrialNoise
{
    TrialNoise(const AttackConfig &cfg, sim::MultiCoreSystem *mc,
               sim::MemorySystem *fallback)
        : cfg_(cfg.scheduler), mc_(mc),
          pollution_(sim::coRunnerSeed(cfg.seed, 0x8000),
                     AddressSpaceId(200))
    {
        for (unsigned i = 0; i < cfg_.coRunners.size(); ++i) {
            runners_.push_back(std::make_unique<sim::CoRunnerProgram>(
                cfg_.coRunners[i], cfg_.coRunnerLines, cfg_.coRunnerGap,
                sim::coRunnerSeed(cfg.seed, i)));
            // Cross-core: co-runners spread over the cores after the
            // attacker's (core 1), wrapping onto the parties' cores —
            // the same progression the Scheduler uses. Same-core:
            // everything shares the one hierarchy.
            sim::MemorySystem *m = fallback;
            if (mc_ != nullptr)
                m = &mc_->port((2 + i) % mc_->coreCount());
            runnerMems_.push_back(m);
            runnerSpaces_.emplace_back(AddressSpaceId(100 + i));
        }
    }

    /** Interference between the victim's run and the probe. */
    void
    interfere(sim::MemorySystem &attackerMem)
    {
        for (unsigned i = 0; i < runners_.size(); ++i) {
            runners_[i]->burst(*runnerMems_[i],
                               sim::Scheduler::osTid - 2 - 2 * i,
                               runnerSpaces_[i]);
        }
        // Tick pollution only under co-runner load, mirroring the
        // Scheduler (which pollutes at context switches, and a core
        // nobody shares never switches): a migration-only config
        // measures the pure synchronization cost of migration.
        if (!runners_.empty()) {
            pollution_.burst(attackerMem, cfg_.pollutionLines,
                             cfg_.pollutionStoreFraction);
        }
    }

    const sim::SchedulerConfig &cfg_;
    sim::MultiCoreSystem *mc_;
    std::vector<std::unique_ptr<sim::CoRunnerProgram>> runners_;
    std::vector<sim::MemorySystem *> runnerMems_;
    std::vector<sim::AddressSpace> runnerSpaces_;
    sim::PollutionStream pollution_;
};

} // namespace

AttackResult
runAttack(const AttackConfig &cfg)
{
    Rng rng(cfg.seed);

    // Same-core: attacker and victim share one Hierarchy and contend
    // on an L1 set. Cross-core: the victim runs on core 0 and the
    // attacker on core 1 of a MultiCoreSystem, contending on a set of
    // the shared LLC (whose index layout both derive from their
    // virtual addresses).
    std::unique_ptr<sim::Hierarchy> hier;
    std::unique_ptr<sim::MultiCoreSystem> mc;
    sim::MemorySystem *atkMem = nullptr;
    sim::MemorySystem *vicMem = nullptr;
    unsigned ways = cfg.platform.l1.ways;
    unsigned replacementSize = cfg.replacementSize;
    if (cfg.crossCore) {
        mc = std::make_unique<sim::MultiCoreSystem>(
            cfg.platform, std::max(2u, cfg.cores), &rng);
        vicMem = &mc->port(0);
        atkMem = &mc->port(1);
        ways = cfg.platform.llc.ways;
        // The probe must be able to replace the whole LLC set.
        replacementSize = std::max(replacementSize, ways + 2);
    } else {
        hier = std::make_unique<sim::Hierarchy>(cfg.platform, &rng);
        atkMem = hier.get();
        vicMem = hier.get();
    }
    const sim::AddressLayout layout(cfg.crossCore
                                        ? cfg.platform.llc.numSets()
                                        : cfg.platform.l1.numSets());

    sim::AddressSpace attackerSpace(7);
    sim::AddressSpace victimSpace(8);

    // How many lines a full prime of the contended set takes. The L1
    // attack fills exactly the W ways; the LLC attack needs the same
    // slack as the probe (tree-PLRU spares recently-touched victim
    // lines from an exact-W fill of the larger shared set).
    const unsigned primeLines = cfg.crossCore ? replacementSize : ways;

    AttackerCtx atk{
        atkMem,
        attackerSpace,
        cfg.noise,
        chan::linesForSet(layout, cfg.setM, primeLines, /*tagBase=*/1),
        chan::PointerChase(chan::linesForSet(layout, cfg.setM,
                                             replacementSize, 0x100)),
        chan::PointerChase(chan::linesForSet(layout, cfg.setM,
                                             replacementSize, 0x200)),
        true,
        rng,
    };

    // Clean-noise lines the attacker uses to prime set n in scenario 3.
    auto cleanLinesN =
        chan::linesForSet(layout, cfg.setN, primeLines, /*tagBase=*/0x60);

    // Dedicated set-m pools for self-calibration (never resident in L1
    // right after a prime/probe, so their miss latencies are clean
    // measurements of the two states being contrasted).
    auto calPool0 =
        chan::linesForSet(layout, cfg.setM, ways, /*tagBase=*/0x300);
    auto calPool1 =
        chan::linesForSet(layout, cfg.setM, ways, /*tagBase=*/0x400);

    const GadgetKind gadget = cfg.scenario == Scenario::DirtyProbe
                                  ? GadgetKind::StoreBranch
                                  : GadgetKind::LoadBranch;
    Victim victim(*vicMem, layout, victimSpace, gadget, cfg.setM,
                  cfg.setN, cfg.serialLines, cfg.noise);

    // --- Self-calibration: the attacker measures the latency contrast
    // it expects, using only its own lines. ---
    Samples cal0, cal1;
    for (unsigned i = 0; i < cfg.calibration; ++i) {
        switch (cfg.scenario) {
          case Scenario::DirtyProbe:
            // secret=0 <-> clean set; secret=1 <-> 1 dirty line
            // (serialLines dirty lines when the gadget is widened).
            atk.probe(); // clean the set
            cal0.add(atk.probe());
            atk.dirtyPrime(cfg.serialLines);
            cal1.add(atk.probe());
            break;
          case Scenario::DirtyPrime:
            // secret=0 leaves the full dirty prime intact (the victim
            // touches set n); secret=1 evicts serialLines dirty lines,
            // making the probe cheaper by that many write-backs.
            atk.dirtyPrime(primeLines);
            cal0.add(atk.probe()); // full dirty prime intact
            atk.dirtyPrime(primeLines);
            // Emulate the victim's evictions with clean set-m loads.
            atkMem->accessBatch(attackerTid, attackerSpace,
                                calPool0.data(), cfg.serialLines,
                                /*isWrite=*/false);
            cal1.add(atk.probe());
            break;
          case Scenario::VictimTiming: {
            // Calibrate on the victim-visible latency of touching
            // serialLines lines over a dirty vs clean set.
            atk.dirtyPrime(primeLines);
            const auto b1 = atkMem->accessBatch(
                attackerTid, attackerSpace, calPool1.data(),
                cfg.serialLines, /*isWrite=*/false);
            cal1.add(static_cast<double>(
                b1.totalLatency + cfg.noise.opOverhead * b1.accesses));
            atk.probe(); // clean the set again
            const auto b0 = atkMem->accessBatch(
                attackerTid, attackerSpace, calPool0.data(),
                cfg.serialLines, /*isWrite=*/false);
            cal0.add(static_cast<double>(
                b0.totalLatency + cfg.noise.opOverhead * b0.accesses));
            break;
          }
        }
    }

    AttackResult res;
    res.threshold = (cal0.median() + cal1.median()) / 2.0;
    const bool oneIsSlow = cal1.median() >= cal0.median();

    // --- Per-trial OS noise (co-runners, pollution, migration). ---
    std::optional<TrialNoise> osNoise;
    if (cfg.scheduler.active())
        osNoise.emplace(cfg, mc.get(), atkMem);
    unsigned atkCore = 1; //!< attacker placement (cross-core)

    // --- The attack proper. ---
    Samples lat0, lat1;
    unsigned correct = 0;
    for (unsigned t = 0; t < cfg.trials; ++t) {
        // Mid-trial OS events, applied between the attacker's staging
        // and its measurement (the window a real attack loop cannot
        // shield): co-runner bursts and tick pollution every trial,
        // plus — every migrationPeriod trials — a forced migration of
        // the attacker to the next victim-free core. The victim keeps
        // running during the migration gap, so the staged
        // synchronization window is lost and that trial decays toward
        // a coin flip; accuracy falls as the period shrinks.
        const bool migrateNow = cfg.crossCore &&
                                cfg.scheduler.migrationPeriod != 0 &&
                                t != 0 &&
                                t % cfg.scheduler.migrationPeriod == 0;
        auto midTrial = [&]() {
            if (migrateNow) {
                do {
                    atkCore = (atkCore + 1) % mc->coreCount();
                } while (atkCore == 0);
                atkMem = &mc->port(atkCore);
                atk.mem = atkMem;
                victim.run(rng.flip()); // the unobserved invocation
            }
            if (osNoise)
                osNoise->interfere(*atkMem);
        };
        const bool secret = rng.flip();
        double measured = 0.0;
        switch (cfg.scenario) {
          case Scenario::DirtyProbe:
            atk.probe(); // initialization: clean set m
            midTrial();
            victim.run(secret);
            measured = atk.probe();
            break;
          case Scenario::DirtyPrime:
            atk.dirtyPrime(primeLines);
            midTrial();
            victim.run(secret);
            measured = atk.probe();
            break;
          case Scenario::VictimTiming: {
            atk.dirtyPrime(primeLines);
            atkMem->accessBatch(attackerTid, attackerSpace, cleanLinesN,
                                /*isWrite=*/false);
            midTrial();
            Cycles vt = victim.run(secret);
            measured = static_cast<double>(vt);
            // Timing a whole function call carries call/ret, pipeline
            // and serialization dispersion far above the per-load
            // noise — the reason the paper finds a single secret-
            // dependent line insufficient for scenario 3.
            measured += rng.gaussian(0.0, victimCallSigma);
            break;
          }
        }
        (secret ? lat1 : lat0).add(measured);
        const bool guess = oneIsSlow ? measured > res.threshold
                                     : measured < res.threshold;
        if (guess == secret)
            ++correct;
    }

    res.accuracy = cfg.trials
        ? static_cast<double>(correct) / static_cast<double>(cfg.trials)
        : 0.0;
    res.meanLatency0 = lat0.mean();
    res.meanLatency1 = lat1.mean();
    return res;
}

unsigned
recoverKeyDemo(unsigned keyBits, unsigned votes, std::uint64_t seed,
               const std::string &platformName)
{
    Rng rng(seed);
    const sim::Platform &plat = sim::platform(platformName);
    const sim::HierarchyParams &hp = plat.params;
    const sim::NoiseModel &noise = plat.noise;
    sim::Hierarchy hierarchy(hp, &rng);
    const auto &layout = hierarchy.l1().layout();

    sim::AddressSpace attackerSpace(7);
    sim::AddressSpace victimSpace(8);
    const unsigned setM = 13;
    const unsigned setN = 21;

    Victim victim(hierarchy, layout, victimSpace, GadgetKind::StoreBranch,
                  setM, setN, /*serialLines=*/1, noise);

    AttackerCtx atk{
        &hierarchy,
        attackerSpace,
        noise,
        chan::linesForSet(layout, setM, hp.l1.ways, 1),
        chan::PointerChase(chan::linesForSet(layout, setM, 10, 0x100)),
        chan::PointerChase(chan::linesForSet(layout, setM, 10, 0x200)),
        true,
        rng,
    };

    // Calibrate threshold.
    Samples c0, c1;
    for (unsigned i = 0; i < 100; ++i) {
        atk.probe();
        c0.add(atk.probe());
        atk.dirtyPrime(1);
        c1.add(atk.probe());
    }
    const double threshold = (c0.median() + c1.median()) / 2.0;

    // The secret key the victim holds.
    std::vector<bool> key;
    for (unsigned i = 0; i < keyBits; ++i)
        key.push_back(rng.flip());

    unsigned recovered = 0;
    for (unsigned bit = 0; bit < keyBits; ++bit) {
        unsigned ones = 0;
        for (unsigned v = 0; v < votes; ++v) {
            atk.probe(); // clean
            victim.run(key[bit]); // victim's round touches set m iff 1
            if (atk.probe() > threshold)
                ++ones;
        }
        const bool guess = 2 * ones > votes;
        if (guess == key[bit])
            ++recovered;
    }
    return recovered;
}

} // namespace wb::sidechan
