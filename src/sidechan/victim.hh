/**
 * @file
 * Victim gadgets with secret-dependent memory behaviour (paper Fig. 9).
 *
 * Gadget (a): `if (secret) modify line0; else access line1;` — the
 * secret decides whether a store dirties a line in cache set m.
 *
 * Gadget (b): `if (secret) access line0; else access line1;` — the
 * secret decides which set a read-only load touches (line0 in set m,
 * line1 in set n), as in table-lookup cryptography where the key is
 * never written.
 *
 * Scenario 3 additionally needs each branch to touch several lines
 * serially so the victim's own execution-time difference rises above
 * call overhead noise (the paper found two serial lines per branch are
 * required).
 */

#ifndef WB_SIDECHAN_VICTIM_HH
#define WB_SIDECHAN_VICTIM_HH

#include <vector>

#include "common/types.hh"
#include "sim/address.hh"
#include "sim/hierarchy.hh"
#include "sim/noise_model.hh"

namespace wb::sidechan
{

/** Which Fig. 9 gadget the victim embodies. */
enum class GadgetKind
{
    StoreBranch, //!< Fig. 9(a): the taken branch stores
    LoadBranch   //!< Fig. 9(b): the taken branch only loads
};

/** A callable victim executing one secret-dependent gadget. */
class Victim
{
  public:
    /**
     * @param mem memory system the victim runs against — a Hierarchy
     *        (same-core attack) or one core's port of a
     *        MultiCoreSystem (cross-core attack)
     * @param layout address layout the target sets index into (the L1
     *        layout for the paper's L1 attack, the LLC layout for the
     *        cross-core variant)
     * @param space the victim process' address space
     * @param kind which gadget
     * @param setM cache set of the secret=1 branch's line(s)
     * @param setN cache set of the secret=0 branch's line(s)
     * @param serialLines lines touched serially per branch (scenario 3)
     * @param noise noise model (per-op overhead accounting)
     */
    Victim(sim::MemorySystem &mem, const sim::AddressLayout &layout,
           sim::AddressSpace space, GadgetKind kind, unsigned setM,
           unsigned setN, unsigned serialLines,
           const sim::NoiseModel &noise);

    /**
     * Execute the gadget once.
     * @param secret the secret bit
     * @return the victim's own execution latency in cycles
     */
    Cycles run(bool secret);

    /** The victim thread id on the hierarchy (for counters). */
    static constexpr ThreadId tid = 3;

  private:
    sim::MemorySystem &mem_;
    sim::AddressSpace space_;
    GadgetKind kind_;
    unsigned serialLines_;
    sim::NoiseModel noise_;
    std::vector<Addr> linesM_; //!< secret=1 branch lines (set m)
    std::vector<Addr> linesN_; //!< secret=0 branch lines (set n)
};

} // namespace wb::sidechan

#endif // WB_SIDECHAN_VICTIM_HH
