/**
 * @file
 * The three WB side-channel scenarios of paper Sec. IX.
 *
 *  1. Store gadget: the attacker cleans set m, lets the victim run,
 *     then times a replacement of set m. A dirty line (the victim's
 *     secret-dependent store) raises the latency — secret recovered.
 *  2. Load gadget (read-only secret): the attacker pre-fills set m
 *     with W dirty lines of its own. A victim load into set m evicts
 *     one dirty line, so the attacker's subsequent timed replacement
 *     of set m is one dirty write-back *cheaper* — secret recovered.
 *  3. Execution-time: the attacker fills set m with dirty lines and
 *     set n with clean lines, then times the *victim's* execution: a
 *     secret=1 branch (set m) must write back dirty victims and runs
 *     slower. The signal only clears call-overhead noise when each
 *     branch touches at least two lines serially (paper's finding).
 */

#ifndef WB_SIDECHAN_ATTACK_HH
#define WB_SIDECHAN_ATTACK_HH

#include <cstdint>
#include <string>

#include "common/rng.hh"
#include "sidechan/victim.hh"
#include "sim/platform.hh"
#include "sim/scheduler.hh"

namespace wb::sidechan
{

/** Which Sec. IX scenario to run. */
enum class Scenario
{
    DirtyProbe = 1,     //!< scenario 1 (store gadget)
    DirtyPrime = 2,     //!< scenario 2 (load gadget, dirty prime)
    VictimTiming = 3    //!< scenario 3 (victim execution time)
};

/** Experiment parameters. */
struct AttackConfig
{
    Scenario scenario = Scenario::DirtyProbe;
    unsigned trials = 200;        //!< secrets to recover
    unsigned serialLines = 1;     //!< victim lines per branch
    unsigned setM = 13;           //!< secret=1 branch set
    unsigned setN = 21;           //!< secret=0 branch set
    unsigned replacementSize = 10; //!< attacker probe size
    unsigned calibration = 200;   //!< calibration measurements
    std::uint64_t seed = 1;

    /**
     * Cross-core variant: victim on core 0, attacker on core 1 of a
     * MultiCoreSystem, with the target sets indexed against the
     * *shared LLC* layout instead of the L1. The attacker's timed
     * replacement of LLC set m observes the victim's dirty lines as
     * inclusive back-invalidation drains — the same three scenarios,
     * carried across cores. replacementSize resolves to llc.ways + 2
     * when it would not cover the LLC set.
     */
    bool crossCore = false;
    unsigned cores = 2; //!< cores instantiated when crossCore is set

    /** Registry preset this config was built from (see usePlatform). */
    std::string platformName = sim::kDefaultPlatform;
    sim::HierarchyParams platform = sim::xeonE5_2650Params();
    sim::NoiseModel noise;

    /**
     * OS-noise regime (Table VII) for the attack loop. The attack is
     * an offline measurement loop (no SMT interleaving), so the
     * scheduler knobs are applied per trial: each co-runner issues
     * one burst between the victim's run and the attacker's probe,
     * the OS pollutes the attacker's core with pollutionLines touches
     * per trial, and — cross-core only — migrationPeriod counts the
     * *trials* between forced attacker migrations to the next
     * victim-free core. Inactive by default.
     */
    sim::SchedulerConfig scheduler;

    /**
     * Reconfigure for a named registry preset: hierarchy parameters,
     * noise model, and the preset's core count (at least 2, used only
     * when crossCore is set). Fatal on an unknown name. @return *this.
     */
    AttackConfig &
    usePlatform(const std::string &name)
    {
        sim::applyPlatform(name, platformName, platform, noise);
        cores = std::max(2u, sim::platform(name).cores);
        return *this;
    }
};

/** Experiment outcome. */
struct AttackResult
{
    double accuracy = 0.0;   //!< fraction of secrets recovered
    double threshold = 0.0;  //!< calibrated decision threshold
    double meanLatency0 = 0.0; //!< mean probe/exec latency, secret=0
    double meanLatency1 = 0.0; //!< mean probe/exec latency, secret=1
};

/**
 * Run one side-channel experiment: per trial, pick a random secret,
 * stage the attack, run the victim, and infer the secret from the
 * measured latency. The attacker self-calibrates its threshold first
 * (using its own lines only — no knowledge of the victim's secret).
 */
AttackResult runAttack(const AttackConfig &cfg);

/**
 * End-to-end key recovery demo: a victim "cipher" whose round function
 * stores into set m exactly when the current key bit is 1 (gadget a).
 * The attacker recovers the whole key with scenario 1, one bit at a
 * time with majority voting.
 *
 * @param keyBits key length
 * @param votes odd number of probes per bit
 * @param seed run seed
 * @param platformName registry preset to attack on
 * @return number of correctly recovered bits
 */
unsigned recoverKeyDemo(unsigned keyBits, unsigned votes,
                        std::uint64_t seed,
                        const std::string &platformName =
                            sim::kDefaultPlatform);

} // namespace wb::sidechan

#endif // WB_SIDECHAN_ATTACK_HH
