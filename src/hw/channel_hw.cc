#include "hw/channel_hw.hh"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <random>
#include <sstream>
#include <thread>

#include "common/edit_distance.hh"
#include "hw/tsc_hw.hh"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace wb::hw
{

namespace
{

/** Pin the calling thread to @p cpu. @return success. */
bool
pinSelf(int cpu)
{
#if defined(__linux__)
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(cpu, &set);
    return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
    (void)cpu;
    return false;
#endif
}

/** Carve `count` lines mapping to `targetSet` out of `storage`. */
std::vector<std::uint8_t *>
carveLines(std::vector<std::uint8_t> &storage, unsigned sets,
           unsigned count, unsigned targetSet)
{
    const std::size_t way = static_cast<std::size_t>(sets) * 64;
    storage.assign(way * (count + 2) + 4096, 0);
    auto base = reinterpret_cast<std::uintptr_t>(storage.data());
    const std::uintptr_t aligned = (base + way - 1) / way * way;
    std::vector<std::uint8_t *> lines;
    for (unsigned k = 0; k < count; ++k) {
        lines.push_back(reinterpret_cast<std::uint8_t *>(
            aligned + static_cast<std::size_t>(k) * way +
            static_cast<std::size_t>(targetSet) * 64));
    }
    return lines;
}

/** Random-order linked list over the lines; returns the head. */
std::uint8_t *
buildChain(std::vector<std::uint8_t *> lines, std::mt19937_64 &rng)
{
    std::shuffle(lines.begin(), lines.end(), rng);
    for (std::size_t i = 0; i + 1 < lines.size(); ++i)
        *reinterpret_cast<std::uint8_t **>(lines[i]) = lines[i + 1];
    *reinterpret_cast<std::uint8_t **>(lines.back()) = nullptr;
    return lines.front();
}

/** Timed dependent-load traversal (paper Fig. 3). */
inline std::uint64_t
timedChase(std::uint8_t *head)
{
    const std::uint64_t t0 = rdtscp();
    const std::uint8_t *p = head;
    while (p != nullptr)
        p = *reinterpret_cast<std::uint8_t *const *>(p);
    const std::uint64_t t1 = rdtscp();
    return t1 - t0;
}

} // namespace

int
siblingOf(int cpu)
{
    std::ostringstream path;
    path << "/sys/devices/system/cpu/cpu" << cpu
         << "/topology/thread_siblings_list";
    std::ifstream in(path.str());
    if (!in)
        return -1;
    std::string list;
    std::getline(in, list);
    // Formats like "0,12" or "0-1"; pick the entry that is not `cpu`.
    for (char &c : list)
        if (c == ',' || c == '-')
            c = ' ';
    std::istringstream parse(list);
    int id;
    while (parse >> id)
        if (id != cpu)
            return id;
    return -1;
}

HwChannelResult
runHwChannel(const HwChannelConfig &cfg, const std::vector<bool> &bits)
{
    HwChannelResult res;
    if (!available() || bits.empty())
        return res;
    if (std::thread::hardware_concurrency() < 2) {
        res.note = "fewer than two logical CPUs";
        return res;
    }
    res.supported = true;
    res.senderCpu = cfg.senderCpu;
    res.receiverCpu =
        cfg.receiverCpu >= 0 ? cfg.receiverCpu : siblingOf(cfg.senderCpu);
    if (res.receiverCpu < 0) {
        res.receiverCpu = cfg.senderCpu + 1;
        res.note += "[no SMT sibling found; using adjacent CPU "
                    "(expect noise)] ";
    }

    std::mt19937_64 rng(0xbadc0de);

    // Sender pool: its own lines mapping to the target set.
    std::vector<std::uint8_t> senderStorage;
    auto senderLines = carveLines(senderStorage, cfg.l1Sets,
                                  cfg.l1Ways, cfg.targetSet);

    // Receiver pools: alternating replacement sets A/B.
    std::vector<std::uint8_t> storageA, storageB;
    auto linesA = carveLines(storageA, cfg.l1Sets, cfg.replacementSize,
                             cfg.targetSet);
    auto linesB = carveLines(storageB, cfg.l1Sets, cfg.replacementSize,
                             cfg.targetSet);
    std::uint8_t *chainA = buildChain(linesA, rng);
    std::uint8_t *chainB = buildChain(linesB, rng);

    const std::size_t slots = bits.size();
    std::vector<double> lat(slots + 16, 0.0);

    std::atomic<bool> go{false};
    std::atomic<bool> senderPinned{true}, receiverPinned{true};

    std::thread sender([&]() {
        if (!pinSelf(res.senderCpu))
            senderPinned = false;
        while (!go.load(std::memory_order_acquire)) {
        }
        std::uint64_t tlast = rdtscp();
        for (bool bit : bits) {
            if (bit) {
                // Algorithm 1: put d lines in the dirty state.
                for (unsigned k = 0; k < cfg.d; ++k)
                    *(senderLines[k] + 32) = static_cast<std::uint8_t>(k);
            }
            while (rdtscp() < tlast + cfg.tsCycles) {
            }
            tlast = rdtscp();
        }
    });

    std::thread receiver([&]() {
        if (!pinSelf(res.receiverCpu))
            receiverPinned = false;
        // Warm both replacement sets.
        for (int sweep = 0; sweep < 4; ++sweep) {
            timedChase(chainA);
            timedChase(chainB);
        }
        while (!go.load(std::memory_order_acquire)) {
        }
        std::uint64_t tlast = rdtscp();
        bool useA = true;
        for (auto &sample : lat) {
            while (rdtscp() < tlast + cfg.tsCycles) {
            }
            tlast = rdtscp();
            // Algorithm 2: timed replacement, alternating sets.
            sample = static_cast<double>(
                timedChase(useA ? chainA : chainB));
            useA = !useA;
        }
    });

    go.store(true, std::memory_order_release);
    sender.join();
    receiver.join();

    if (!senderPinned || !receiverPinned)
        res.note += "[affinity pinning failed] ";

    res.latencies = lat;

    // Threshold: midpoint between the lower and upper quartiles —
    // robust without a separate calibration run.
    std::vector<double> sorted = lat;
    std::sort(sorted.begin(), sorted.end());
    const double lo = sorted[sorted.size() / 4];
    const double hi = sorted[sorted.size() * 3 / 4];
    res.threshold = (lo + hi) / 2.0;

    std::vector<bool> decoded;
    decoded.reserve(lat.size());
    for (double v : lat)
        decoded.push_back(v > res.threshold);
    res.ber = bitErrorRate(bits, decoded);
    return res;
}

} // namespace wb::hw
