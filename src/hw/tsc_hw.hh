/**
 * @file
 * Real-hardware timing primitives: the same rdtscp/lfence intrinsics
 * the paper's measurement code (Fig. 3) uses. Compiles to working code
 * on x86-64 and to graceful "unsupported" stubs elsewhere, so the rest
 * of the library never needs an #ifdef.
 */

#ifndef WB_HW_TSC_HW_HH
#define WB_HW_TSC_HW_HH

#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64)
#define WB_HW_X86 1
#include <x86intrin.h>
#else
#define WB_HW_X86 0
#endif

namespace wb::hw
{

/** True when real-hardware timing is available on this build. */
constexpr bool
available()
{
    return WB_HW_X86 != 0;
}

/** Serialized timestamp read (rdtscp). Returns 0 when unavailable. */
inline std::uint64_t
rdtscp()
{
#if WB_HW_X86
    unsigned aux;
    return __rdtscp(&aux);
#else
    return 0;
#endif
}

/** Fenced timestamp read (lfence; rdtsc). Returns 0 when unavailable. */
inline std::uint64_t
fencedTsc()
{
#if WB_HW_X86
    _mm_lfence();
    return __rdtsc();
#else
    return 0;
#endif
}

/** clflush the line containing @p p (no-op when unavailable). */
inline void
clflush(const void *p)
{
#if WB_HW_X86
    _mm_clflush(p);
#else
    (void)p;
#endif
}

/** Full memory fence. */
inline void
mfence()
{
#if WB_HW_X86
    _mm_mfence();
#endif
}

} // namespace wb::hw

#endif // WB_HW_TSC_HW_HH
