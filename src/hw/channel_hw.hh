/**
 * @file
 * Real-hardware WB covert channel proof of concept: a near-verbatim
 * port of the paper's sender/receiver (Algorithms 1-3) to two threads
 * pinned to a physical core's hyper-thread siblings.
 *
 * The paper deploys sender and receiver as two *processes* pinned with
 * sched_setaffinity; this PoC uses two threads of one process for a
 * self-contained binary (the cache-state mechanics are identical —
 * the parties still share no data lines). Results are only meaningful
 * when the two logical CPUs are SMT siblings sharing an L1D; the
 * harness reports the CPUs it used so the caller can judge.
 */

#ifndef WB_HW_CHANNEL_HW_HH
#define WB_HW_CHANNEL_HW_HH

#include <cstdint>
#include <string>
#include <vector>

namespace wb::hw
{

/** Hardware channel configuration. */
struct HwChannelConfig
{
    unsigned targetSet = 13;       //!< agreed L1 set
    unsigned l1Sets = 64;
    unsigned l1Ways = 8;
    unsigned replacementSize = 10;
    std::uint64_t tsCycles = 20000; //!< slot period (host TSC cycles)
    unsigned d = 8;                 //!< dirty lines per 1-bit
    int senderCpu = 0;              //!< logical CPU for the sender
    int receiverCpu = -1;           //!< -1: pick senderCpu's sibling
};

/** Hardware channel outcome. */
struct HwChannelResult
{
    bool supported = false; //!< x86-64 build with >= 2 CPUs
    int senderCpu = -1;
    int receiverCpu = -1;
    double ber = 1.0;           //!< edit-distance BER over the payload
    double threshold = 0.0;     //!< latency threshold used
    std::vector<double> latencies; //!< receiver observations
    std::string note;           //!< diagnostics (affinity failures...)
};

/**
 * Transmit @p bits once over the live L1D of this machine.
 * Returns supported=false on non-x86 builds.
 */
HwChannelResult runHwChannel(const HwChannelConfig &cfg,
                             const std::vector<bool> &bits);

/** Sibling of @p cpu per /sys topology, or -1 when unknown. */
int siblingOf(int cpu);

} // namespace wb::hw

#endif // WB_HW_CHANNEL_HW_HH
