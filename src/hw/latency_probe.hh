/**
 * @file
 * Host-machine latency probe: measures this machine's equivalents of
 * paper Table IV (L1 hit; L2 hit replacing a clean L1 line; L2 hit
 * replacing a dirty L1 line) with the paper's own method — a randomly
 * permuted pointer chase over lines mapping to one L1 set, bracketed
 * by rdtscp (Fig. 3 verbatim, ported from C to C++).
 *
 * Single-process and self-contained: no SMT co-location needed, so it
 * produces meaningful numbers on any x86-64 Linux host, container or
 * bare metal. This is the repro=5 "same intrinsics" port; the
 * simulator remains the source of all bench/test numbers.
 */

#ifndef WB_HW_LATENCY_PROBE_HH
#define WB_HW_LATENCY_PROBE_HH

#include <cstddef>
#include <vector>

#include "common/stats.hh"

namespace wb::hw
{

/** Probe configuration. */
struct ProbeConfig
{
    unsigned l1Sets = 64;          //!< assumed L1 geometry
    unsigned l1Ways = 8;
    unsigned targetSet = 13;       //!< probed set
    unsigned replacementSize = 10; //!< lines per replacement set
    unsigned measurements = 1000;  //!< samples per configuration
};

/** Probe outcome: latency distributions in host TSC cycles. */
struct ProbeResult
{
    bool supported = false;    //!< false on non-x86 builds
    Samples l1Hit;             //!< repeated access to a hot line
    Samples chaseByDirty[9];   //!< replacement-set chase for d = 0..8
    double perLinePenalty = 0; //!< fitted extra cycles per dirty line
};

/**
 * Run the probe on the host. Allocates a few MiB, builds same-set
 * line pools from virtual addresses (the L1 is virtually indexed),
 * and measures. Returns supported=false without touching timing
 * hardware when the build target is not x86-64.
 */
ProbeResult runLatencyProbe(const ProbeConfig &cfg);

} // namespace wb::hw

#endif // WB_HW_LATENCY_PROBE_HH
