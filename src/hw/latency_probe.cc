#include "hw/latency_probe.hh"

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <random>
#include <vector>

#include "common/types.hh"
#include "hw/tsc_hw.hh"

namespace wb::hw
{

namespace
{

/**
 * A buffer large enough to carve many distinct same-set lines from.
 * Lines mapping to L1 set s are at offsets s*64 + k*(sets*64).
 */
class SetBuffer
{
  public:
    SetBuffer(unsigned sets, unsigned count, unsigned targetSet)
    {
        const std::size_t way = static_cast<std::size_t>(sets) * 64;
        storage_.resize(way * (count + 2) + 4096, 0);
        // Align the base to the way size so set indices are exact.
        auto base = reinterpret_cast<std::uintptr_t>(storage_.data());
        const std::uintptr_t aligned = (base + way - 1) / way * way;
        for (unsigned k = 0; k < count; ++k) {
            lines_.push_back(reinterpret_cast<std::uint8_t *>(
                aligned + static_cast<std::size_t>(k) * way +
                static_cast<std::size_t>(targetSet) * 64));
        }
    }

    /** k-th line mapping to the target set. */
    std::uint8_t *line(unsigned k) { return lines_.at(k); }

    /** All carved lines. */
    const std::vector<std::uint8_t *> &lines() const { return lines_; }

  private:
    std::vector<std::uint8_t> storage_;
    std::vector<std::uint8_t *> lines_;
};

/**
 * Build a pointer-chase chain over the given lines in a random order:
 * each line's first 8 bytes hold the address of the next line.
 * Returns the head. (Paper Fig. 3's linked list.)
 */
std::uint8_t *
buildChain(std::vector<std::uint8_t *> lines, std::mt19937_64 &rng)
{
    std::shuffle(lines.begin(), lines.end(), rng);
    for (std::size_t i = 0; i + 1 < lines.size(); ++i)
        *reinterpret_cast<std::uint8_t **>(lines[i]) = lines[i + 1];
    *reinterpret_cast<std::uint8_t **>(lines.back()) = nullptr;
    return lines.front();
}

/** Timed traversal of a chain (dependent loads, rdtscp brackets). */
inline std::uint64_t
timedChase(std::uint8_t *head)
{
    const std::uint64_t t0 = rdtscp();
    const std::uint8_t *p = head;
    while (p != nullptr)
        p = *reinterpret_cast<std::uint8_t *const *>(p);
    const std::uint64_t t1 = rdtscp();
    return t1 - t0;
}

} // namespace

ProbeResult
runLatencyProbe(const ProbeConfig &cfg)
{
    ProbeResult res;
    if (!available())
        return res;
    res.supported = true;

    std::mt19937_64 rng(0xc0ffee);

    // --- L1 hit latency: hammer one hot line. ---
    {
        SetBuffer buf(cfg.l1Sets, 1, cfg.targetSet);
        volatile std::uint8_t *hot = buf.line(0);
        (void)*hot;
        for (unsigned i = 0; i < cfg.measurements; ++i) {
            const std::uint64_t t0 = rdtscp();
            (void)*hot;
            const std::uint64_t t1 = rdtscp();
            res.l1Hit.add(static_cast<double>(t1 - t0));
        }
    }

    // --- Replacement-set chase with d dirty lines in the set. ---
    // Pools: dirty lines (tags 0..7), replacement sets A and B.
    SetBuffer dirtyBuf(cfg.l1Sets, cfg.l1Ways, cfg.targetSet);
    SetBuffer bufA(cfg.l1Sets, cfg.replacementSize, cfg.targetSet);
    SetBuffer bufB(cfg.l1Sets, cfg.replacementSize, cfg.targetSet);

    // Build each chain once (writing the links dirties the lines, so
    // it must happen before warm-up, exactly as the paper's receiver
    // sets its list up once and then only loads).
    std::uint8_t *chainA = buildChain(bufA.lines(), rng);
    std::uint8_t *chainB = buildChain(bufB.lines(), rng);

    for (unsigned d = 0; d <= 8 && d <= cfg.l1Ways; ++d) {
        Samples &samples = res.chaseByDirty[d];
        bool useA = true;
        // Warm both replacement sets (and drain the link-write dirt).
        for (int sweep = 0; sweep < 4; ++sweep) {
            timedChase(chainA);
            timedChase(chainB);
        }
        for (unsigned i = 0; i < cfg.measurements; ++i) {
            // Sender phase: dirty d lines.
            for (unsigned k = 0; k < d; ++k)
                *(dirtyBuf.line(k) + 32) = static_cast<std::uint8_t>(i);
            mfence();
            // Receiver phase: timed chase of the replacement set.
            samples.add(static_cast<double>(
                timedChase(useA ? chainA : chainB)));
            useA = !useA;
        }
    }

    // Least-squares slope of median latency vs d.
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    const double n = 9.0;
    for (unsigned d = 0; d <= 8; ++d) {
        const double x = d;
        const double y = res.chaseByDirty[d].median();
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
    }
    res.perLinePenalty = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    return res;
}

} // namespace wb::hw
