/**
 * @file
 * Reproduces paper Table I / Fig. 2: the new classification of cache
 * covert channels — Hit+Miss, Hit+Hit, Miss+Miss — demonstrated by
 * running one exemplar of each class on the same platform and
 * measuring the latency pair its receiver distinguishes.
 *
 *  - Hit+Miss  (Flush+Reload): reload hit vs DRAM miss
 *  - Hit+Hit   (CacheBleed-style): an L1 hit vs an L1 hit delayed by
 *    SMT port/bank contention from the sibling thread
 *  - Miss+Miss (WB, this paper): clean-replace miss vs dirty-replace
 *    miss — the largest relative gap, as the paper stresses
 */

#include <iostream>

#include "common/stats.hh"
#include "common/table.hh"
#include "sim/hierarchy.hh"
#include "sim/smt_core.hh"
#include "baselines/flush_channels.hh"
#include "baselines/hit_hit_channel.hh"
#include "chan/channel.hh"

using namespace wb;
using namespace wb::sim;

namespace
{

/** Load-hammer sibling creating port contention (CacheBleed's role). */
class Hammer : public Program
{
  public:
    std::optional<MemOp>
    next(ProcView &) override
    {
        return MemOp::pipelinedLoad(0x8000);
    }
    void onResult(const MemOp &, const OpResult &, ProcView &) override
    {
    }
};

/** Victim thread timing repeated L1 hits. */
class HitTimer : public Program
{
  public:
    explicit HitTimer(unsigned samples) : samples_(samples) {}

    std::optional<MemOp>
    next(ProcView &) override
    {
        if (done())
            return MemOp::halt();
        return MemOp::load(0x4000);
    }

    void
    onResult(const MemOp &, const OpResult &res, ProcView &) override
    {
        if (!first_) {
            first_ = true; // discard the cold fill
            return;
        }
        lat.add(double(res.latency));
    }

    bool done() const { return lat.count() >= samples_; }

    Samples lat;

  private:
    unsigned samples_;
    bool first_ = false;
};

} // namespace

int
main()
{
    banner(std::cout,
           "Table I / Fig. 2: covert-channel classification exemplars");

    Rng rng(6);
    HierarchyParams hp = xeonE5_2650Params();
    hp.l1.policy = PolicyKind::TrueLru;

    Table t("One exemplar per class; the receiver distinguishes the "
            "latency pair");
    t.header({"class", "exemplar", "'0' latency", "'1' latency",
              "gap"});

    // --- Hit+Miss: Flush+Reload on a shared line. ---
    {
        Hierarchy h(hp, &rng);
        Samples hit, miss;
        const Addr a = 0x13000;
        for (int i = 0; i < 400; ++i) {
            h.flush(0, a);
            miss.add(double(h.access(0, a, false).latency)); // absent
            hit.add(double(h.access(0, a, false).latency));  // present
        }
        t.row({"Hit+Miss", "Flush+Reload",
               Table::num(miss.median(), 0) + " (miss)",
               Table::num(hit.median(), 0) + " (hit)",
               Table::num(miss.median() - hit.median(), 0)});
    }

    // --- Hit+Hit: L1 hits with vs without a hammering sibling. ---
    {
        Samples quiet, contended;
        {
            Hierarchy h(hp, &rng);
            NoiseModel nm = NoiseModel::quiet();
            SmtCore core(h, nm, rng);
            HitTimer timer(400);
            core.addThread(&timer, AddressSpace(1));
            core.run(10'000'000);
            quiet = timer.lat;
        }
        {
            Hierarchy h(hp, &rng);
            NoiseModel nm = NoiseModel::quiet();
            nm.portContentionProb = 0.6; // CacheBleed hammers one bank
            nm.portContentionWindow = 8;
            nm.portContentionDelay = 3;
            SmtCore core(h, nm, rng);
            HitTimer timer(400);
            Hammer hammer;
            core.addThread(&timer, AddressSpace(1));
            core.addThread(&hammer, AddressSpace(2));
            core.run(10'000'000);
            contended = timer.lat;
        }
        t.row({"Hit+Hit", "CacheBleed-style bank contention",
               Table::num(quiet.median(), 0) + " (quiet)",
               Table::num(contended.mean(), 1) + " (contended mean)",
               Table::num(contended.mean() - quiet.median(), 1)});
    }

    // --- Miss+Miss: the WB channel's clean vs dirty replacement. ---
    {
        Hierarchy h(hp, &rng);
        const auto &layout = h.l1().layout();
        Samples clean, dirty;
        for (int i = 0; i < 400; ++i) {
            // Clean-resident set, L2-resident probe line.
            for (Addr tag = 1; tag <= 8; ++tag)
                h.access(0, layout.compose(5, tag), false);
            auto c = h.access(0, layout.compose(5, 20 + (i % 4)), false);
            if (c.servedBy == Level::L2 && !c.l1VictimDirty)
                clean.add(double(c.latency));
            for (Addr tag = 1; tag <= 8; ++tag)
                h.access(0, layout.compose(5, tag), true);
            auto d = h.access(0, layout.compose(5, 30 + (i % 4)), false);
            if (d.servedBy == Level::L2 && d.l1VictimDirty)
                dirty.add(double(d.latency));
        }
        t.row({"Miss+Miss", "WB channel (this paper)",
               Table::num(clean.median(), 0) + " (clean repl)",
               Table::num(dirty.median(), 0) + " (dirty repl)",
               Table::num(dirty.median() - clean.median(), 0)});
    }

    t.note("The paper's observation: the Miss+Miss dirty/clean gap "
           "(~12 cyc) is about twice the L1-hit-vs-L2 gap, while "
           "needing no shared memory (unlike Flush+Reload) and no "
           "co-resident hyper-thread hammering (unlike CacheBleed).");
    t.note("Other Miss+Miss exemplar (coherence-state flush timing) "
           "is exercised by the baselines suite.");
    t.print(std::cout);

    // All three classes as *working channels* on the same platform.
    Table t2("\nEach class as a live covert channel at 400 kbps");
    t2.header({"class", "channel", "BER"});
    {
        baselines::BaselineConfig cfg;
        cfg.ts = cfg.tr = 5500;
        cfg.frames = 12;
        cfg.seed = 3;
        auto fr = baselines::runFlushChannel(
            cfg, baselines::FlushKind::FlushReload);
        t2.row({"Hit+Miss", "Flush+Reload (shared memory)",
                Table::pct(fr.ber, 1)});
        auto hh = baselines::runHitHitChannel(cfg);
        t2.row({"Hit+Hit", "port-contention hammering",
                Table::pct(hh.ber, 1)});
    }
    {
        chan::ChannelConfig cfg;
        cfg.protocol.ts = cfg.protocol.tr = 5500;
        cfg.protocol.frames = 12;
        cfg.protocol.encoding = chan::Encoding::binary(4);
        cfg.calibration.measurements = 150;
        cfg.seed = 3;
        auto wb = chan::runChannel(cfg);
        t2.row({"Miss+Miss", "WB channel (no sharing, no hammering)",
                Table::pct(wb.ber, 1)});
    }
    t2.print(std::cout);
    return 0;
}
