/**
 * @file
 * Reproduces paper Fig. 6: bit error rate (edit distance) vs.
 * transmission rate for binary encodings d = 1..8. The paper's
 * protocol: 128-bit frames (16-bit preamble), sent >= 90 times,
 * Tr = Ts in {800, 1000, 1600, 2200, 5500, 11000} cycles.
 *
 * Bands to reproduce: all curves < 5% at 1375 kbps; BER grows with
 * rate; d = 1 is clearly worst at high rates (~12.5% at 2750 kbps);
 * d = 8 stays lowest (~4.5% at 2750 kbps).
 */

#include <iostream>

#include "chan/channel.hh"
#include "common/table.hh"

using namespace wb;
using namespace wb::chan;

int
main()
{
    banner(std::cout, "Fig. 6: BER vs transmission rate (binary)");

    const Cycles periods[] = {11000, 5500, 2200, 1600, 1000, 800};
    const std::uint64_t seeds[] = {11, 22, 33};

    Table t("Edit-distance BER, 90 frames x 128 bits, mean of 3 seeds");
    t.header({"rate", "d=1", "d=2", "d=3", "d=4", "d=5", "d=6", "d=7",
              "d=8"});

    for (Cycles ts : periods) {
        std::vector<std::string> cells;
        {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%4.0f kbps",
                          2.2e6 / double(ts));
            cells.emplace_back(buf);
        }
        for (unsigned d = 1; d <= 8; ++d) {
            double sum = 0.0;
            for (auto seed : seeds) {
                ChannelConfig cfg;
                cfg.protocol.ts = cfg.protocol.tr = ts;
                cfg.protocol.encoding = Encoding::binary(d);
                cfg.protocol.frames = 90; // paper: at least 90
                cfg.calibration.measurements = 200;
                cfg.seed = seed;
                sum += runChannel(cfg).ber;
            }
            cells.push_back(Table::pct(sum / 3.0, 2));
        }
        t.row(cells);
    }
    t.note("Paper bands: <5% everywhere at 1375 kbps; at 2750 kbps "
           "d=1 ~12.5%, d=2..7 ~5-7.5%, d=8 ~4.5%.");
    t.note("Error sources (modeled): slot-phase random walk from spin "
           "overshoot (slips/overlap bursts), OS preemptions, and "
           "rate-scaled SMT measurement dispersion - see "
           "sim/noise_model.hh.");
    t.print(std::cout);
    return 0;
}
