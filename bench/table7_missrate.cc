/**
 * @file
 * Reproduces paper Table VII: cache miss rates of the WB sender under
 * three co-residency settings — the live WB channel, a benign
 * compiler-like workload ("sender & g++"), and the sender alone — for
 * binary and multi-bit encodings. The stealth claim: the WB channel's
 * effect on the sender's perf profile is indistinguishable from (in
 * fact milder than) benign co-scheduling.
 */

#include <iostream>

#include "common/table.hh"
#include "perfmon/stealth.hh"

using namespace wb;
using namespace wb::perfmon;

int
main()
{
    banner(std::cout,
           "Table VII: sender cache miss rates (Ts = 11000, perf view)");

    const unsigned bits = 1280;
    for (bool multiBit : {false, true}) {
        const auto wb =
            senderMissProfile(CoRunner::WbReceiver, multiBit, 11000,
                              bits, 7);
        const auto gpp =
            senderMissProfile(CoRunner::Compiler, multiBit, 11000, bits,
                              7);
        const auto alone =
            senderMissProfile(CoRunner::None, multiBit, 11000, bits, 7);

        Table t(multiBit ? "Multi-bit encoding (paper row 2)"
                         : "Binary encoding (paper row 1)");
        t.header({"level", "WB channel", "sender & g++", "sender only",
                  "paper WB", "paper g++", "paper only"});
        auto pct = [](double v) { return Table::pct(v, 3); };
        if (!multiBit) {
            t.row({"L1D", pct(wb.l1d), pct(gpp.l1d), pct(alone.l1d),
                   "0.040%", "0.160%", "0.003%"});
            t.row({"L2", pct(wb.l2), pct(gpp.l2), pct(alone.l2),
                   "3.59%", "26.84%", "35.16%"});
            t.row({"LLC", pct(wb.llc), pct(gpp.llc), pct(alone.llc),
                   "34.38%", "2.23%", "34.42%"});
        } else {
            t.row({"L1D", pct(wb.l1d), pct(gpp.l1d), pct(alone.l1d),
                   "0.300%", "0.340%", "0.003%"});
            t.row({"L2", pct(wb.l2), pct(gpp.l2), pct(alone.l2),
                   "0.42%", "15.15%", "26.46%"});
            t.row({"LLC", pct(wb.llc), pct(gpp.llc), pct(alone.llc),
                   "39.08%", "1.96%", "35.29%"});
        }
        t.note("Load-bearing relations (all reproduced): sender-only "
               "L1D << WB channel <= benign co-run; multi-bit misses "
               "more than binary; the WB sender's L2 accesses mostly "
               "hit.");
        t.note("L2/LLC rows rest on tiny absolute counts for the "
               "sender (a handful of cold misses); treat ratios as "
               "qualitative, as the paper's own do.");
        t.print(std::cout);
    }
    return 0;
}
