/**
 * @file
 * Reproduces paper Table V (and the Sec. VI-A analytic formula):
 * probability that at least one of d dirty cache lines is replaced by
 * accessing a replacement set of L lines under random replacement.
 *
 * Three columns per (d, L): the paper's analytic IID formula
 * p = 1 - ((W-d)/W)^L, our IID simulation (matches the formula), and
 * an LFSR pseudo-random policy clocked by the access stream (biased —
 * the likely source of the gap between the paper's own gem5 Table V
 * numbers and its formula).
 */

#include <iostream>

#include "common/table.hh"
#include "sim/eviction_probe.hh"

using namespace wb;
using namespace wb::sim;

namespace
{

EvictionProbeResult
run(PolicyKind policy, unsigned d, unsigned L, Rng &rng)
{
    EvictionProbeConfig cfg;
    cfg.policy = policy;
    cfg.dirtyLines = d;
    cfg.replacementSize = L;
    return runEvictionProbe(cfg, 10000, rng);
}

} // namespace

int
main()
{
    Rng rng(5);
    banner(std::cout,
           "Table V: P[at least one dirty line replaced], random "
           "replacement");

    // The paper's measured (gem5) Table V values for reference.
    const double paperD2[6] = {0.636, 0.759, 0.846, 0.890, 0.929, 0.950};
    const double paperD3[6] = {0.895, 0.944, 0.968, 0.983, 0.994, 0.995};

    for (unsigned d : {2u, 3u}) {
        Table t("d = " + std::to_string(d) +
                " dirty lines (10000 trials per cell)");
        t.header({"L", "paper(gem5)", "analytic IID", "sim IID",
                  "sim LFSR"});
        for (unsigned L = 8; L <= 13; ++L) {
            const double paper =
                (d == 2 ? paperD2 : paperD3)[L - 8];
            const double analytic = iidEvictionProbability(8, d, L);
            const auto iid = run(PolicyKind::RandomIid, d, L, rng);
            const auto lfsr = run(PolicyKind::LfsrRandom, d, L, rng);
            t.row({std::to_string(L), Table::pct(paper, 1),
                   Table::pct(analytic, 1),
                   Table::pct(iid.probAnyDirtyEvicted, 1),
                   Table::pct(lfsr.probAnyDirtyEvicted, 1)});
        }
        t.note("Paper text quotes the analytic formula (99.1% at d=3, "
               "L=10); its Table V numbers are lower than its own "
               "formula - consistent with a correlated pseudo-random "
               "victim source as in the LFSR column.");
        t.print(std::cout);
    }
    return 0;
}
