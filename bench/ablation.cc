/**
 * @file
 * Ablation studies for the design decisions DESIGN.md calls out:
 *  - replacement-set size L (paper Sec. IV-A picked 10 for the Xeon)
 *  - calibration budget (measurements per level)
 *  - the random-policy operating point (d, L) matrix
 *  - sender/receiver launch offset robustness (preamble alignment)
 */

#include <iostream>

#include "chan/channel.hh"
#include "common/table.hh"

using namespace wb;
using namespace wb::chan;

namespace
{

double
berOf(ChannelConfig cfg)
{
    double sum = 0;
    for (std::uint64_t seed : {51, 52, 53}) {
        cfg.seed = seed;
        sum += runChannel(cfg).ber;
    }
    return sum / 3.0;
}

ChannelConfig
base()
{
    ChannelConfig cfg;
    cfg.protocol.ts = cfg.protocol.tr = 5500;
    cfg.protocol.encoding = Encoding::binary(4);
    cfg.protocol.frames = 15;
    cfg.calibration.measurements = 200;
    return cfg;
}

} // namespace

int
main()
{
    banner(std::cout, "Ablations");

    // --- Replacement set size. ---
    Table t1("Replacement-set size L (TreePLRU, d=4, 400 kbps)");
    t1.header({"L", "BER"});
    for (unsigned L : {8u, 9u, 10u, 12u, 14u}) {
        ChannelConfig cfg = base();
        cfg.protocol.replacementSize = L;
        t1.row({std::to_string(L), Table::pct(berOf(cfg), 2)});
    }
    t1.note("Sec. IV-A: the Xeon needed L=10 for guaranteed turnover; "
            "L=8 relies on exact-PLRU behaviour and L>10 only adds "
            "measurement time.");
    t1.print(std::cout);

    // --- Calibration budget. ---
    Table t2("\nCalibration budget (measurements per level)");
    t2.header({"measurements", "BER"});
    for (unsigned m : {10u, 25u, 50u, 100u, 400u}) {
        ChannelConfig cfg = base();
        cfg.calibration.measurements = m;
        t2.row({std::to_string(m), Table::pct(berOf(cfg), 2)});
    }
    t2.note("Medians converge fast; a few dozen probes per level "
            "suffice to place the thresholds.");
    t2.print(std::cout);

    // --- Random-policy operating points. ---
    Table t3("\nRandom replacement (d, L) operating points");
    t3.header({"d", "L=10", "L=12", "L=14", "L=16"});
    for (unsigned d : {1u, 3u, 5u, 8u}) {
        std::vector<std::string> row{std::to_string(d)};
        for (unsigned L : {10u, 12u, 14u, 16u}) {
            ChannelConfig cfg = base();
            cfg.platform.l1.policy = sim::PolicyKind::RandomIid;
            cfg.protocol.encoding = Encoding::binary(d);
            cfg.protocol.replacementSize = L;
            row.push_back(Table::pct(berOf(cfg), 1));
        }
        t3.row(row);
    }
    t3.note("Paper's analytic point (d=3, L=12) works but is noisy "
            "under leftover-dirt dynamics; d>=5 with L>=14 is stable "
            "(EXPERIMENTS.md discusses the deviation).");
    t3.print(std::cout);

    // --- Launch offset robustness. ---
    Table t4("\nSender launch offset (slots) - preamble re-alignment");
    t4.header({"offset", "BER"});
    for (unsigned slots : {0u, 3u, 8u, 21u, 64u}) {
        ChannelConfig cfg = base();
        cfg.senderStartSlots = slots;
        t4.row({std::to_string(slots), Table::pct(berOf(cfg), 2)});
    }
    t4.note("The 16-bit preamble absorbs any whole-slot phase between "
            "the parties; no clock agreement is needed beyond Ts=Tr.");
    t4.print(std::cout);
    return 0;
}
