/**
 * @file
 * Reproduces paper Table II: probability that the target line (line 0,
 * freshly written) is evicted by accessing a replacement set of N
 * lines, per replacement policy. 10 000 trials per cell, as in the
 * paper.
 */

#include <iostream>

#include "common/table.hh"
#include "sim/eviction_probe.hh"

using namespace wb;
using namespace wb::sim;

namespace
{

std::string
sweep(PolicyKind policy, unsigned n, double interferenceProb,
      unsigned interferenceMax, Rng &rng)
{
    EvictionProbeConfig cfg;
    cfg.policy = policy;
    cfg.replacementSize = n;
    cfg.interferenceProb = interferenceProb;
    cfg.interferenceMax = interferenceMax;
    const auto res = runEvictionProbe(cfg, 10000, rng);
    return Table::pct(res.probTargetEvicted, 1);
}

} // namespace

int
main()
{
    Rng rng(2022);
    banner(std::cout, "Table II: probability of line 0 being evicted");

    Table t("10000 trials per cell; replacement set size N (paper "
            "values in brackets)");
    t.header({"policy", "N=8", "N=9", "N=10", "N=11", "N=12"});

    t.row({"TrueLRU  [100% / - / -]",
           sweep(PolicyKind::TrueLru, 8, 0, 0, rng),
           sweep(PolicyKind::TrueLru, 9, 0, 0, rng),
           sweep(PolicyKind::TrueLru, 10, 0, 0, rng),
           sweep(PolicyKind::TrueLru, 11, 0, 0, rng),
           sweep(PolicyKind::TrueLru, 12, 0, 0, rng)});

    t.row({"TreePLRU [94.3% / 100% / -]",
           sweep(PolicyKind::TreePlru, 8, 0, 0, rng),
           sweep(PolicyKind::TreePlru, 9, 0, 0, rng),
           sweep(PolicyKind::TreePlru, 10, 0, 0, rng),
           sweep(PolicyKind::TreePlru, 11, 0, 0, rng),
           sweep(PolicyKind::TreePlru, 12, 0, 0, rng)});

    t.row({"TreePLRU+interference",
           sweep(PolicyKind::TreePlru, 8, 0.4, 3, rng),
           sweep(PolicyKind::TreePlru, 9, 0.4, 3, rng),
           sweep(PolicyKind::TreePlru, 10, 0.4, 3, rng),
           sweep(PolicyKind::TreePlru, 11, 0.4, 3, rng),
           sweep(PolicyKind::TreePlru, 12, 0.4, 3, rng)});

    t.row({"NoisyPLRU [Xeon: 68.8% / 81.7% / 100%]",
           sweep(PolicyKind::QuadAgeLru, 8, 0, 0, rng),
           sweep(PolicyKind::QuadAgeLru, 9, 0, 0, rng),
           sweep(PolicyKind::QuadAgeLru, 10, 0, 0, rng),
           sweep(PolicyKind::QuadAgeLru, 11, 0, 0, rng),
           sweep(PolicyKind::QuadAgeLru, 12, 0, 0, rng)});

    t.row({"SRRIP (scan-resistant)",
           sweep(PolicyKind::Srrip, 8, 0, 0, rng),
           sweep(PolicyKind::Srrip, 9, 0, 0, rng),
           sweep(PolicyKind::Srrip, 10, 0, 0, rng),
           sweep(PolicyKind::Srrip, 11, 0, 0, rng),
           sweep(PolicyKind::Srrip, 12, 0, 0, rng)});

    t.note("Paper: gem5 TreePLRU gave 94.3% at N=8; this idealized "
           "TreePLRU turns the set over deterministically at N=8. The "
           "interference/noisy variants model the extra same-set "
           "traffic a real measurement suffers.");
    t.note("NoisyPLRU is the calibrated stand-in for the undocumented "
           "Sandy Bridge policy; it reproduces the sub-certain N=8..9 "
           "band but saturates more slowly than the real part "
           "(paper: 100% at N=10).");
    t.note("SRRIP shown as an ablation: scan-resistant replacement "
           "would naturally blunt replacement-sweep attacks.");
    t.print(std::cout);
    return 0;
}
