#!/usr/bin/env python3
"""Bench-regression gate: diff a BENCH_micro.json run against the
committed baseline and fail on per-workload regressions.

Usage:
    compare_bench.py BASELINE.json CURRENT.json [--threshold 0.15]
                     [--no-normalize]

CI machines and the developer box that produced the committed baseline
run at very different absolute speeds, so raw ops/sec are not
comparable across files. The gate therefore normalizes by the median
throughput ratio across all workloads common to both files (the
"machine factor") and flags any workload whose *relative* ratio falls
more than --threshold below that median: a uniform slowdown (slower
machine) passes, one workload getting slower than its peers fails. A
slowdown hitting every *simulator* workload at once cannot hide in
the median either: the fleet median is additionally checked against
the CANARY workloads (pure scalar compute, no simulator code), and
falling >threshold behind them fails. Pass --no-normalize to gate on
raw ratios instead (same-machine comparisons, e.g. a local
before/after).

Workloads present in only one file (newly added or retired) are
reported but never gate, and so are the UNGATED workloads below
(per-op cost of a few ns: their quick-window throughput spreads more
than the threshold on shared runners even best-of-5; pass --gate-all
to include them). Exit status: 0 = pass, 1 = regression, 2 =
usage/inputs unusable.
"""

import argparse
import json
import sys

# Reported but not gated by default: measured spread across healthy
# quick runs exceeds the default threshold (see docs/PERF.md). The
# sweep-scaling family measures thread-pool wall-clock scaling, which
# tracks the host's schedulable CPU count, not the code.
UNGATED = {"probe-hit", "sweep-scaling-1t", "sweep-scaling-2t",
           "sweep-scaling-4t", "sweep-scaling-8t"}

# Workloads that do not touch the simulator hot path (pure scalar
# compute). The fleet-median machine factor would silently absorb a
# regression that slows *every* simulator workload at once; comparing
# the fleet median against these canaries catches that broad case.
CANARIES = {"edit-distance"}


def load_workloads(path):
    """Map (name, impl) -> ops_per_sec from a BENCH_micro.json file."""
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"compare_bench: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    out = {}
    for w in data.get("workloads", []):
        key = (w["name"], w["impl"])
        ops = float(w["ops_per_sec"])
        if ops > 0.0:
            out[key] = ops
    if not out:
        print(f"compare_bench: no workloads in {path}", file=sys.stderr)
        sys.exit(2)
    return out


def median(values):
    s = sorted(values)
    n = len(s)
    mid = n // 2
    return s[mid] if n % 2 else (s[mid - 1] + s[mid]) / 2.0


def main():
    ap = argparse.ArgumentParser(
        description="fail when a tracked bench workload regresses")
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="allowed relative regression (default 0.15)")
    ap.add_argument("--no-normalize", action="store_true",
                    help="gate on raw ratios (same-machine comparison)")
    ap.add_argument("--gate-all", action="store_true",
                    help="gate the UNGATED (high-jitter) workloads too")
    args = ap.parse_args()

    base = load_workloads(args.baseline)
    cur = load_workloads(args.current)

    common = sorted(set(base) & set(cur))
    if not common:
        print("compare_bench: no common workloads to compare",
              file=sys.stderr)
        sys.exit(2)

    ratios = {key: cur[key] / base[key] for key in common}
    factor = 1.0 if args.no_normalize else median(ratios.values())

    header = (f"{'workload':28s} {'impl':10s} {'baseline':>12s} "
              f"{'current':>12s} {'rel':>7s}  verdict")
    print(header)
    print("-" * len(header))
    failures = []
    for key in common:
        name, impl = key
        rel = ratios[key] / factor
        gated = args.gate_all or name not in UNGATED
        regressed = gated and rel < 1.0 - args.threshold
        if regressed:
            verdict = "REGRESSED"
            failures.append((name, impl, rel))
        else:
            verdict = "ok" if gated else "not gated (jitter)"
        print(f"{name:28s} {impl:10s} {base[key]:12.0f} "
              f"{cur[key]:12.0f} {rel:7.2f}  {verdict}")

    for key in sorted(set(cur) - set(base)):
        print(f"{key[0]:28s} {key[1]:10s} {'-':>12s} "
              f"{cur[key]:12.0f} {'-':>7s}  new (not gated)")
    for key in sorted(set(base) - set(cur)):
        print(f"{key[0]:28s} {key[1]:10s} {base[key]:12.0f} "
              f"{'-':>12s} {'-':>7s}  missing (not gated)")

    print(f"\nmachine factor (median ratio): {factor:.3f}; "
          f"threshold: {args.threshold:.0%}")

    # Broad-regression safeguard: per-workload gating is relative to
    # the fleet median, which a change slowing *all* simulator
    # workloads would drag down with it. The canaries don't run
    # simulator code, so the fleet falling >threshold behind them
    # means a fleet-wide slowdown (or heavy interference — rerun).
    if not args.no_normalize:
        canary_ratios = [ratios[k] for k in common if k[0] in CANARIES]
        if canary_ratios:
            canary = median(canary_ratios)
            print(f"canary factor (median over "
                  f"{sorted(CANARIES)}): {canary:.3f}")
            if factor < (1.0 - args.threshold) * canary:
                print(f"\nFAIL: fleet median {factor:.3f} is >"
                      f"{args.threshold:.0%} below the canary factor "
                      f"{canary:.3f}: fleet-wide simulator slowdown "
                      f"(or heavy interference — rerun to confirm)")
                sys.exit(1)

    if failures:
        print(f"\nFAIL: {len(failures)} workload(s) regressed >"
              f"{args.threshold:.0%} relative to the fleet:")
        for name, impl, rel in failures:
            print(f"  {name} [{impl}]: {rel:.2f}x of expected")
        sys.exit(1)
    print("\nPASS: no tracked workload regressed beyond the threshold")
    sys.exit(0)


if __name__ == "__main__":
    main()
