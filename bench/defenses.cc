/**
 * @file
 * Reproduces the Sec. VIII defense evaluation: the covert channel
 * rerun under each proposed mitigation, reporting residual BER, the
 * physical signal gap (calibrated d=0 vs d=max latency difference)
 * and goodput. Verdicts to match the paper: write-through, PLcache,
 * DAWG, random-fill and full partitions close the channel; prefetch
 * noise, weak partitions, fine fuzzy time and random replacement do
 * not.
 */

#include <iostream>

#include "common/table.hh"
#include "defense/defense.hh"

using namespace wb;
using namespace wb::defense;

int
main()
{
    banner(std::cout, "Sec. VIII: defenses against the WB channel");

    chan::ChannelConfig base;
    base.protocol.ts = base.protocol.tr = 5500;
    base.protocol.encoding = chan::Encoding::binary(8);
    base.protocol.frames = 20;
    base.calibration.measurements = 200;
    base.seed = 5;

    auto evals = evaluateDefenses(base, standardDefenseSpecs());

    Table t("WB channel (d=8, 400 kbps) under each defense");
    t.header({"defense", "BER", "signal gap (cyc)", "goodput",
              "verdict"});
    for (const auto &ev : evals) {
        const bool closed =
            ev.signalGap < 5.0 || ev.result.ber > 0.25;
        t.row({defenseName(ev.spec), Table::pct(ev.result.ber, 1),
               Table::num(ev.signalGap, 1),
               Table::num(ev.result.goodputKbps, 0) + " kbps",
               ev.spec.kind == DefenseKind::None
                   ? "(baseline)"
                   : (closed ? "mitigates" : "channel survives")});
    }
    t.note("Signal gap = calibrated latency difference between d=0 "
           "and d=8 states; ~0 means the dirty-state physics is gone, "
           "not merely the decoder.");
    t.print(std::cout);

    // Random replacement with the attacker adapting (Sec. VI-A).
    Table t2("\nRandom replacement with an adaptive attacker");
    t2.header({"operating point", "BER"});
    for (auto [d, L] : {std::pair<unsigned, unsigned>{3, 12},
                        {5, 14},
                        {8, 16}}) {
        chan::ChannelConfig cfg = base;
        cfg.platform.l1.policy = sim::PolicyKind::RandomIid;
        cfg.protocol.encoding = chan::Encoding::binary(d);
        cfg.protocol.replacementSize = L;
        auto res = chan::runChannel(cfg);
        t2.row({"d=" + std::to_string(d) + ", L=" + std::to_string(L),
                Table::pct(res.ber, 1)});
    }
    t2.note("Paper: \"simply adopting a random replacement policy "
            "still cannot effectively defeat the WB channel\" - the "
            "attacker raises d and the replacement-set size.");
    t2.print(std::cout);

    // Fuzzy time granularity sweep.
    Table t3("\nFuzzy-time granularity sweep (d=8 signal = ~88 cyc)");
    t3.header({"TSC granularity", "BER"});
    for (unsigned g : {1u, 16u, 64u, 128u, 256u, 512u}) {
        auto evalsG =
            evaluateDefenses(base, {{DefenseKind::FuzzyTime, g}});
        t3.row({std::to_string(g) + " cyc",
                Table::pct(evalsG[1].result.ber, 1)});
    }
    t3.note("Coarse clocks degrade the channel gradually; the paper "
            "notes attackers rebuild fine clocks with counting "
            "threads anyway.");
    t3.print(std::cout);
    return 0;
}
