/**
 * @file
 * Reproduces paper Fig. 4: cumulative distribution functions of the
 * replacement-set access latency when the target set contains
 * d = 0..8 dirty lines (1000 measurements per d, replacement set of
 * 10, as in the paper).
 */

#include <iostream>

#include "chan/calibration.hh"
#include "common/table.hh"

using namespace wb;
using namespace wb::chan;

int
main()
{
    sim::HierarchyParams hp = sim::xeonE5_2650Params();
    sim::NoiseModel noise;
    CalibrationConfig cfg;
    cfg.measurements = 1000; // paper: 1000 per d
    for (unsigned d = 0; d <= 8; ++d)
        cfg.levelsMix.push_back(d);
    Rng rng(4);
    auto cal = calibrate(hp, noise, cfg, rng);

    banner(std::cout,
           "Fig. 4: replacement-set latency distributions by d");

    Table t("1000 measurements per d (replacement set = 10 lines)");
    t.header({"d", "p5", "median", "p95", "gap to d-1"});
    for (unsigned d = 0; d <= 8; ++d) {
        const auto &s = cal.latencyByD[d];
        t.row({std::to_string(d), Table::num(s.percentile(5), 0),
               Table::num(s.median(), 1), Table::num(s.percentile(95), 0),
               d == 0 ? "-"
                      : Table::num(cal.medianByD[d] -
                                       cal.medianByD[d - 1],
                                   1)});
    }
    t.note("Paper: each dirty line adds ~10 cycles of replacement "
           "latency; bands are narrow and separable.");
    t.print(std::cout);

    // ASCII CDF overlay on a fixed grid, like the figure.
    const double lo = cal.medianByD[0] - 25.0;
    const double hi = cal.medianByD[8] + 25.0;
    std::cout << "\nCDF overlay (x = latency, columns d=0..8, values = "
                 "P[X<=x] in %):\n    x   ";
    for (unsigned d = 0; d <= 8; ++d)
        std::cout << "  d=" << d;
    std::cout << "\n";
    for (int step = 0; step <= 14; ++step) {
        const double x = lo + (hi - lo) * step / 14.0;
        std::printf("  %5.0f ", x);
        for (unsigned d = 0; d <= 8; ++d)
            std::printf("%5.0f", 100.0 * cal.latencyByD[d].cdfAt(x));
        std::cout << "\n";
    }
    return 0;
}
