/**
 * @file
 * Reproduces paper Fig. 8 / Sec. VI: stability of the WB channel vs.
 * the LRU channel and Prime+Probe under noisy cache lines — clean
 * noise (loads by other processes) breaks the address-targeting
 * channels but not the WB channel; dirty noise (stores) is the WB
 * channel's only interference source.
 */

#include <iostream>

#include "baselines/lru_channel.hh"
#include "baselines/prime_probe.hh"
#include "chan/channel.hh"
#include "common/table.hh"

using namespace wb;

namespace
{

double
wbBer(unsigned noiseProcs, double storeFraction, std::uint64_t seed)
{
    chan::ChannelConfig cfg;
    cfg.protocol.ts = cfg.protocol.tr = 5500;
    cfg.protocol.encoding = chan::Encoding::binary(1);
    cfg.protocol.frames = 20;
    cfg.calibration.measurements = 200;
    cfg.seed = seed;
    cfg.noiseProcesses = noiseProcs;
    cfg.noiseCfg.period = 3 * 5500;
    cfg.noiseCfg.burstLines = 1;
    cfg.noiseCfg.storeFraction = storeFraction;
    return chan::runChannel(cfg).ber;
}

double
lruBer(unsigned noiseProcs, std::uint64_t seed)
{
    baselines::BaselineConfig cfg;
    cfg.platform.l1.policy = sim::PolicyKind::TrueLru; // its best case
    cfg.ts = cfg.tr = 5500;
    cfg.frames = 20;
    cfg.seed = seed;
    cfg.noiseProcesses = noiseProcs;
    cfg.noiseCfg.period = 3 * 5500;
    cfg.noiseCfg.burstLines = 1;
    return baselines::runLruChannel(cfg).ber;
}

double
ppBer(unsigned noiseProcs, std::uint64_t seed)
{
    baselines::BaselineConfig cfg;
    cfg.ts = cfg.tr = 5500;
    cfg.frames = 20;
    cfg.seed = seed;
    cfg.noiseProcesses = noiseProcs;
    cfg.noiseCfg.period = 3 * 5500;
    cfg.noiseCfg.burstLines = 1;
    return baselines::runPrimeProbeChannel(cfg).ber;
}

std::string
avg3(double (*f)(unsigned, std::uint64_t), unsigned n)
{
    double sum = 0;
    for (std::uint64_t seed : {3, 4, 5})
        sum += f(n, seed);
    return Table::pct(sum / 3.0, 1);
}

} // namespace

int
main()
{
    banner(std::cout,
           "Fig. 8: noisy-cache-line stability, WB vs LRU vs P+P "
           "(400 kbps)");

    Table t("Mean BER of 3 seeds; noise = periodic same-set loads by "
            "another process");
    t.header({"channel", "no noise", "1 noise proc", "2 noise procs"});
    t.row({"WB (this paper)", avg3([](unsigned n, std::uint64_t s) {
               return wbBer(n, 0.0, s);
           }, 0),
           avg3([](unsigned n, std::uint64_t s) {
               return wbBer(n, 0.0, s);
           }, 1),
           avg3([](unsigned n, std::uint64_t s) {
               return wbBer(n, 0.0, s);
           }, 2)});
    t.row({"LRU channel", avg3(lruBer, 0), avg3(lruBer, 1),
           avg3(lruBer, 2)});
    t.row({"Prime+Probe", avg3(ppBer, 0), avg3(ppBer, 1),
           avg3(ppBer, 2)});
    t.note("Clean noisy lines replace clean lines and do not disturb "
           "the dirty-state signal (Fig. 8(b)); they do evict the "
           "LRU/P+P channels' probe lines (Fig. 8(a)).");
    t.print(std::cout);

    Table t2("\nThe WB channel's admitted interference: *stores* to "
             "the target set");
    t2.header({"noise store fraction", "WB BER"});
    for (double f : {0.0, 0.5, 1.0}) {
        double sum = 0;
        for (std::uint64_t seed : {3, 4, 5})
            sum += wbBer(1, f, seed);
        t2.row({Table::num(f, 1), Table::pct(sum / 3.0, 1)});
    }
    t2.note("Paper Sec. VI: \"if other processes modify a cache line "
            "mapped to the target set, this will affect our WB "
            "channel. However... this is not common.\"");
    t2.print(std::cout);
    return 0;
}
