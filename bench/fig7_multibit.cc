/**
 * @file
 * Reproduces paper Fig. 7 and the multi-bit headline of Sec. V:
 * 2-bit symbols over dirty-line levels {0, 3, 5, 8}, 256-bit frames
 * sent >= 45 times. The paper reports an example trace at 1100 kbps
 * (Ts = 4000) and 3.5% BER at 4400 kbps (Ts = 1000).
 */

#include <iostream>

#include "chan/channel.hh"
#include "common/table.hh"

using namespace wb;
using namespace wb::chan;

int
main()
{
    banner(std::cout, "Fig. 7: multi-bit (2 bits/symbol) channel");

    // --- Example trace at 1100 kbps, like the figure. ---
    {
        ChannelConfig cfg;
        cfg.protocol.ts = cfg.protocol.tr = 4000;
        cfg.protocol.encoding = Encoding::paperTwoBit();
        cfg.protocol.frameBits = 256;
        cfg.protocol.frames = 20;
        cfg.calibration.measurements = 300;
        cfg.seed = 11;
        auto res = runChannel(cfg);

        std::cout << "Trace at 1100 kbps (Ts = 4000): BER "
                  << Table::pct(res.ber, 2) << "\n";
        auto anchor = alignByPattern(res.decodedBits, preamble16(), 2);
        const std::size_t bitStart = anchor.value_or(0);
        const std::size_t slotStart = bitStart / 2;
        std::cout << "  slot:    ";
        for (int i = 0; i < 8; ++i)
            std::printf("%7zu", slotStart + i);
        std::cout << "\n  latency: ";
        for (int i = 0; i < 8; ++i)
            std::printf("%7.0f", res.latencies[slotStart + i]);
        std::cout << "\n  sent 2b: ";
        for (int i = 0; i < 8; ++i) {
            const int b0 = res.sentFrame[2 * i];
            const int b1 = res.sentFrame[2 * i + 1];
            std::printf("%5d%d ", b0, b1);
        }
        std::cout << "\n  centroids (d=0/3/5/8): ";
        for (unsigned d : {0u, 3u, 5u, 8u})
            std::cout << Table::num(res.calibrationMedians[d], 0) << " ";
        std::cout << "\n";
    }

    // --- BER vs rate, including the 4400 kbps headline. ---
    Table t("\n2-bit BER vs rate (45 frames x 256 bits, mean of 3 "
            "seeds)");
    t.header({"Ts", "rate", "BER", "paper"});
    for (Cycles ts : {11000u, 5500u, 4000u, 2200u, 1600u, 1000u, 800u}) {
        double sum = 0.0;
        for (std::uint64_t seed : {11, 22, 33}) {
            ChannelConfig cfg;
            cfg.protocol.ts = cfg.protocol.tr = ts;
            cfg.protocol.encoding = Encoding::paperTwoBit();
            cfg.protocol.frameBits = 256;
            cfg.protocol.frames = 45; // paper: at least 45
            cfg.calibration.measurements = 200;
            cfg.seed = seed;
            sum += runChannel(cfg).ber;
        }
        char rate[32];
        std::snprintf(rate, sizeof(rate), "%4.0f kbps",
                      2 * 2.2e6 / double(ts));
        t.row({std::to_string(ts), rate, Table::pct(sum / 3.0, 2),
               ts == 1000 ? "3.5%" : "-"});
    }
    t.note("Paper headline: 3.5% BER at 4400 kbps - far beyond the "
           "1375-2700 kbps binary range.");
    t.print(std::cout);
    return 0;
}
