/**
 * @file
 * Reproduces paper Table IV: latency of cache accesses on the modeled
 * Xeon E5-2650 — L1D hit, L2 hit replacing a clean L1 line, and L2 hit
 * replacing a dirty L1 line. Measured over many accesses with the
 * realistic per-access noise enabled, reported as observed ranges.
 */

#include <iostream>

#include "common/stats.hh"
#include "common/table.hh"
#include "sim/hierarchy.hh"

using namespace wb;
using namespace wb::sim;

int
main()
{
    Rng rng(4);
    HierarchyParams hp = xeonE5_2650Params();
    hp.l1.policy = PolicyKind::TrueLru; // exact victim order
    Hierarchy h(hp, &rng);
    const auto &layout = h.l1().layout();
    auto line = [&](unsigned set, Addr tag) {
        return layout.compose(set, tag);
    };

    Samples l1Hit, l2CleanReplace, l2DirtyReplace;
    const unsigned set = 21;

    // Warm a pool of lines into L2.
    for (Addr t = 1; t <= 20; ++t)
        h.access(0, line(set, t), false);

    for (int i = 0; i < 1000; ++i) {
        // --- L1 hit: re-access the most recent line. ---
        const Addr hot = line(set, 1 + (i % 20));
        h.access(0, hot, false); // ensure resident
        l1Hit.add(double(h.access(0, hot, false).latency));

        // --- L2 hit replacing a clean line: fill the set with clean
        // lines, then access an L2-resident line. ---
        for (Addr t = 1; t <= 8; ++t)
            h.access(0, line(set, t + (i % 4) * 3), false);
        auto clean = h.access(0, line(set, 15), false);
        if (clean.servedBy == Level::L2 && !clean.l1VictimDirty)
            l2CleanReplace.add(double(clean.latency));

        // --- L2 hit replacing a dirty line: dirty the whole set
        // first. ---
        for (Addr t = 1; t <= 8; ++t)
            h.access(0, line(set, t), true);
        auto dirty = h.access(0, line(set, 16), false);
        if (dirty.servedBy == Level::L2 && dirty.l1VictimDirty)
            l2DirtyReplace.add(double(dirty.latency));
    }

    banner(std::cout, "Table IV: latency of cache access (cycles)");
    Table t("Measured on the simulated Xeon E5-2650 (1000 samples)");
    t.header({"access type", "paper", "measured p5-p95", "median"});
    auto row = [&](const std::string &name, const std::string &paper,
                   const Samples &s) {
        t.row({name, paper,
               Table::num(s.percentile(5), 0) + "-" +
                   Table::num(s.percentile(95), 0),
               Table::num(s.median(), 1)});
    };
    row("L1D hit", "4-5", l1Hit);
    row("L2 hit + replacing clean line", "10-12", l2CleanReplace);
    row("L2 hit + replacing dirty line", "22-23", l2DirtyReplace);
    t.note("The dirty-victim case pays the write-back of the victim "
           "before the fill completes - the WB channel's signal "
           "(~2x the clean-replacement latency, as the paper stresses).");
    t.print(std::cout);
    return 0;
}
