/**
 * @file
 * Reproduces paper Fig. 5: example latency sequences observed by the
 * receiver at 400 kbps (Ts = Tr = 5500) for d = 1, 4 and 8, including
 * the 16-bit alignment preamble and the decision threshold.
 */

#include <iostream>

#include "chan/channel.hh"
#include "common/table.hh"

using namespace wb;
using namespace wb::chan;

int
main()
{
    banner(std::cout,
           "Fig. 5: receiver traces at 400 kbps (Ts = Tr = 5500)");

    for (unsigned d : {1u, 4u, 8u}) {
        ChannelConfig cfg;
        cfg.protocol.ts = cfg.protocol.tr = 5500;
        cfg.protocol.encoding = Encoding::binary(d);
        cfg.protocol.frames = 20;
        cfg.calibration.measurements = 300;
        cfg.seed = 2022 + d;
        auto res = runChannel(cfg);

        const double thr =
            (res.calibrationMedians[0] + res.calibrationMedians[d]) / 2;
        std::cout << "\n--- d = " << d << "  (threshold "
                  << Table::num(thr, 1) << " cycles, BER "
                  << Table::pct(res.ber, 2) << ", "
                  << res.framesScored << "/" << res.framesExpected
                  << " frames) ---\n";

        // Locate the preamble in the decoded bits and print the
        // aligned first-16-slot magnified view, like the lower panels.
        auto anchor = alignByPattern(res.decodedBits, preamble16(), 2);
        const std::size_t start = anchor.value_or(0);
        std::cout << "  slot:    ";
        for (int i = 0; i < 16; ++i)
            std::printf("%6zu", start + i);
        std::cout << "\n  latency: ";
        for (int i = 0; i < 16; ++i)
            std::printf("%6.0f", res.latencies[start + i]);
        std::cout << "\n  decoded: ";
        for (int i = 0; i < 16; ++i)
            std::printf("%6d",
                        res.latencies[start + i] > thr ? 1 : 0);
        std::cout << "\n  sent:    ";
        for (int i = 0; i < 16; ++i)
            std::printf("%6d", int(res.sentFrame[i]));
        std::cout << "\n";
    }
    std::cout << "\nPaper: 0-bits sit near the clean-replacement band, "
                 "1-bits ~10*d cycles above; the dotted threshold "
                 "separates them cleanly at this rate.\n";
    return 0;
}
