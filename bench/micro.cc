/**
 * @file
 * bench_micro — self-contained microbenchmark harness for the
 * simulator hot paths, with machine-readable output.
 *
 * Measures accesses/second for the cache-layer workloads the channel
 * experiments are built from, on both the production flat
 * structure-of-arrays Cache and the seed-layout RefCache (so the
 * refactor speedup is measured within one binary), plus two end-to-end
 * hierarchy workloads:
 *
 *   probe-hit        resident-line probeBatch sweeps (receiver decode)
 *   fill-evict       eviction sweeps with dirty fills (sender encode)
 *   partitioned      fill-evict under NoMo-style way partitioning
 *   plcache-locked   fill-evict with half the set PLcache-locked
 *   hierarchy-access sequential demand loads through L1/L2/LLC
 *   hierarchy-dirty-evict  store stream exercising the WB-channel path
 *   pointer-chase    replacement-set traversal measurement (receiver)
 *   smt-step         two-thread SMT core stepping (ops = cycles)
 *   trace-step       smt-step as a flat/reference pair: trace-compiled
 *                    engine vs forced per-op virtual stepping
 *   spin-step        spin-wait-dominated stepping (ops = cycles)
 *   sweep-scaling-Nt fixed 8-cell channel work-list through a
 *                    SweepRunner pool with N workers (ops = cells)
 *   multicore-access miss-heavy sweep through a 2-core shared LLC
 *   llc-slice-evict  back-invalidation-heavy dirty sweep on the sliced
 *                    16-core LLC as a flat/reference pair: per-slice
 *                    sharer directory vs the all-core scan
 *   channel-frame    one 128-bit frame end to end (ops = bits)
 *   tenant-frame     one small many-tenant sweep (discovery through
 *                    decode) on the sliced 16-core preset (ops = bits)
 *   cross-core-frame one cross-core frame on the 4-core desktop
 *   noise-frame      one frame under the OS-noise scheduler (2 mixed
 *                    co-runners; ops = bits)
 *   transport-frame  one transport session (framing + FrameSync + ARQ
 *                    + adaptive rate; ops = payload bits)
 *   calibration      offline threshold calibration (ops = measurements)
 *   edit-distance    128-bit Wagner-Fischer frame scoring
 *
 * Results are written as JSON (default BENCH_micro.json): one record
 * per workload with {"name", "impl", "ops_per_sec", "config"}, plus a
 * "speedup_vs_reference" summary. See docs/PERF.md for the schema.
 *
 * Usage: bench_micro [--quick] [--out FILE]
 */

#include <chrono>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

#include "chan/calibration.hh"
#include "chan/channel.hh"
#include "chan/cross_core.hh"
#include "chan/set_mapping.hh"
#include "chan/tenant.hh"
#include "common/edit_distance.hh"
#include "common/rng.hh"
#include "sim/cache.hh"
#include "sim/hierarchy.hh"
#include "sim/multicore.hh"
#include "sim/ref_cache.hh"
#include "sim/smt_core.hh"
#include "sim/sweep_runner.hh"

using namespace wb;
using namespace wb::sim;

namespace
{

/** One measured workload result. */
struct BenchResult
{
    std::string name;
    std::string impl; //!< "flat", "reference" or "hierarchy"
    double opsPerSec = 0.0;
    std::uint64_t ops = 0;
    double elapsedSec = 0.0;
    std::string configJson; //!< preformatted {"k":v,...} object
};

double
now()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(clock::now().time_since_epoch())
        .count();
}

/**
 * Number of best-of timing windows per workload. The quick (CI) mode
 * uses more, shorter windows than the full run: the 15% bench gate
 * compares quick runs across jobs, and more windows make the
 * fastest-window estimate robust against sustained co-tenant
 * interference bursts that can span an entire short window.
 */
int gWindows = 3;

/**
 * Run @p body (which performs @p opsPerCall simulated accesses per
 * invocation) in gWindows timing windows of @p budgetSec each, after
 * one untimed warm-up call, and report the fastest window. Best-of-N
 * is the standard defense against scheduler noise on shared machines:
 * interference only ever makes a window slower, so the fastest window
 * is the closest estimate of the code's actual throughput.
 */
template <typename Body>
BenchResult
measure(const std::string &name, const std::string &impl,
        std::string configJson, double budgetSec, std::uint64_t opsPerCall,
        Body &&body)
{
    body(); // warm-up: populate sets, fault in the arrays
    BenchResult res;
    res.name = name;
    res.impl = impl;
    res.configJson = std::move(configJson);
    for (int window = 0; window < gWindows; ++window) {
        const double start = now();
        double elapsed = 0.0;
        std::uint64_t calls = 0;
        do {
            body();
            ++calls;
            elapsed = now() - start;
        } while (elapsed < budgetSec);
        const std::uint64_t ops = calls * opsPerCall;
        const double opsPerSec = static_cast<double>(ops) / elapsed;
        if (opsPerSec > res.opsPerSec) {
            res.ops = ops;
            res.elapsedSec = elapsed;
            res.opsPerSec = opsPerSec;
        }
    }
    return res;
}

/** Geometry shared by the cache-layer workloads (a 32 KiB L1). */
CacheParams
l1Params()
{
    CacheParams p;
    p.name = "bench-L1";
    p.sizeBytes = 32 * 1024;
    p.ways = 8;
    p.policy = PolicyKind::TreePlru;
    return p;
}

std::string
cacheConfigJson(const CacheParams &p, const char *extra = nullptr)
{
    std::ostringstream os;
    os << "{\"ways\":" << p.ways << ",\"sets\":" << p.numSets()
       << ",\"policy\":\"" << policyName(p.policy) << "\"";
    if (extra != nullptr)
        os << "," << extra;
    os << "}";
    return os.str();
}

/** Addresses of @p tagsPerSet distinct lines in every set. */
std::vector<Addr>
sweepAddrs(const AddressLayout &layout, unsigned tagsPerSet)
{
    std::vector<Addr> addrs;
    addrs.reserve(std::size_t(layout.numSets()) * tagsPerSet);
    for (unsigned set = 0; set < layout.numSets(); ++set)
        for (unsigned t = 0; t < tagsPerSet; ++t)
            addrs.push_back(layout.compose(set, 1 + t));
    return addrs;
}

/** Drive one pass of fills over @p addrs on either cache model. */
template <typename CacheT>
void
fillPass(CacheT &cache, const std::vector<Addr> &addrs, ThreadId tid,
         bool asDirty)
{
    if constexpr (std::is_same_v<CacheT, Cache>) {
        cache.fillBatch(addrs, tid, asDirty);
    } else {
        for (Addr a : addrs)
            cache.fill(a, tid, asDirty);
    }
}

/** Drive one pass of probes over @p addrs on either cache model. */
template <typename CacheT>
std::uint64_t
probePass(CacheT &cache, const std::vector<Addr> &addrs, ThreadId tid)
{
    if constexpr (std::is_same_v<CacheT, Cache>) {
        return cache.probeBatch(addrs, tid).hits;
    } else {
        std::uint64_t hits = 0;
        for (Addr a : addrs)
            hits += cache.probe(a, tid).has_value() ? 1 : 0;
        return hits;
    }
}

/** probe-hit: every set full, probes always hit (receiver steady state). */
template <typename CacheT>
BenchResult
benchProbeHit(const std::string &impl, double budgetSec)
{
    const CacheParams p = l1Params();
    Rng rng(1);
    CacheT cache(p, &rng);
    const auto addrs = sweepAddrs(cache.layout(), p.ways);
    fillPass(cache, addrs, 0, false); // make every probe a hit
    std::uint64_t sink = 0;
    auto res = measure("probe-hit", impl, cacheConfigJson(p), budgetSec,
                       addrs.size(),
                       [&]() { sink += probePass(cache, addrs, 0); });
    if (sink == ~std::uint64_t(0))
        std::cerr << ""; // defeat dead-code elimination of the probes
    return res;
}

/** fill-evict: 2W distinct lines per set, dirty fills, every op evicts. */
template <typename CacheT>
BenchResult
benchFillEvict(const std::string &impl, double budgetSec)
{
    const CacheParams p = l1Params();
    Rng rng(2);
    CacheT cache(p, &rng);
    const auto addrs = sweepAddrs(cache.layout(), 2 * p.ways);
    return measure("fill-evict", impl,
                   cacheConfigJson(p, "\"asDirty\":true"), budgetSec,
                   addrs.size(),
                   [&]() { fillPass(cache, addrs, 0, true); });
}

/** partitioned: the fill-evict sweep under NoMo-style way masks. */
template <typename CacheT>
BenchResult
benchPartitioned(const std::string &impl, double budgetSec)
{
    CacheParams p = l1Params();
    p.fillMaskPerThread = {wayMaskRange(0, 4), wayMaskRange(4, 8)};
    Rng rng(3);
    CacheT cache(p, &rng);
    const auto addrs = sweepAddrs(cache.layout(), 2 * p.ways);
    ThreadId tid = 0;
    return measure(
        "partitioned", impl,
        cacheConfigJson(p, "\"fillMasks\":[\"0x0f\",\"0xf0\"]"),
        budgetSec, addrs.size(), [&]() {
            fillPass(cache, addrs, tid, true);
            tid ^= 1u;
        });
}

/** plcache-locked: half of every set locked, fills dodge the locks. */
template <typename CacheT>
BenchResult
benchPlcacheLocked(const std::string &impl, double budgetSec)
{
    const CacheParams p = l1Params();
    Rng rng(4);
    CacheT cache(p, &rng);
    const auto &layout = cache.layout();
    // Pin half of each set: fill then lock W/2 protected lines.
    for (unsigned set = 0; set < layout.numSets(); ++set) {
        for (unsigned t = 0; t < p.ways / 2; ++t) {
            const Addr a = layout.compose(set, 0x900 + t);
            cache.fill(a, 0, /*asDirty=*/true);
            cache.lock(a);
        }
    }
    const auto addrs = sweepAddrs(layout, 2 * p.ways);
    return measure("plcache-locked", impl,
                   cacheConfigJson(p, "\"lockedWaysPerSet\":4"),
                   budgetSec, addrs.size(),
                   [&]() { fillPass(cache, addrs, 1, false); });
}

/**
 * hierarchy-access: the miss-heavy end-to-end sweep (1024 distinct
 * lines, double the L1 capacity, so every access misses L1 and hits
 * L2 — the WB-channel eviction-sweep steady state). Measured as a
 * pair: "flat" drives one Hierarchy::accessBatch per pass (the fused
 * miss-path loop), "reference" calls access() per address (the seed
 * idiom every pre-batching call site used).
 */
BenchResult
benchHierarchyAccess(const std::string &impl, double budgetSec)
{
    Rng rng(5);
    HierarchyParams hp = xeonE5_2650Params();
    hp.lat.noiseSigma = 0.0;
    Hierarchy h(hp, &rng);
    std::vector<Addr> addrs;
    for (Addr a = 0; a < 0x10000; a += 64)
        addrs.push_back(a);
    const std::string cfg =
        "{\"platform\":\"xeonE5-2650\",\"noise\":0,\"missHeavy\":true}";
    if (impl == "flat") {
        return measure("hierarchy-access", impl, cfg, budgetSec,
                       addrs.size(), [&]() {
                           (void)h.accessBatch(0, addrs,
                                               /*isWrite=*/false);
                       });
    }
    return measure("hierarchy-access", impl, cfg, budgetSec,
                   addrs.size(), [&]() {
                       for (Addr a : addrs)
                           (void)h.access(0, a, false);
                   });
}

/** hierarchy-dirty-evict: store stream on one set (WB-channel path). */
BenchResult
benchHierarchyDirtyEvict(double budgetSec)
{
    Rng rng(6);
    HierarchyParams hp = xeonE5_2650Params();
    Hierarchy h(hp, &rng);
    const auto &layout = h.l1().layout();
    Addr tag = 1;
    const std::uint64_t opsPerCall = 1024;
    return measure("hierarchy-dirty-evict", "hierarchy",
                   "{\"platform\":\"xeonE5-2650\",\"set\":9}",
                   budgetSec, opsPerCall, [&]() {
                       for (std::uint64_t i = 0; i < opsPerCall; ++i) {
                           (void)h.access(0, layout.compose(9, tag),
                                          true);
                           tag = tag % 64 + 1;
                       }
                   });
}

/** edit-distance: one 128-bit Wagner-Fischer scoring per call. */
BenchResult
benchEditDistance(double budgetSec)
{
    Rng rng(9);
    const BitVec a = randomBits(128, rng);
    BitVec b = a;
    b[17] = !b[17];
    b.erase(b.begin() + 63);
    std::size_t sink = 0;
    auto res = measure("edit-distance", "scalar",
                       "{\"bits\":128,\"unit\":\"scorings\"}", budgetSec,
                       1, [&]() { sink += editDistance(a, b); });
    if (sink == ~std::size_t(0))
        std::cerr << "";
    return res;
}

/** pointer-chase: one replacement-set traversal measurement per call. */
BenchResult
benchPointerChase(double budgetSec)
{
    Rng rng(7);
    HierarchyParams hp = xeonE5_2650Params();
    Hierarchy h(hp, &rng);
    NoiseModel noise;
    AddressSpace space(2);
    const unsigned lines = 16;
    const auto order =
        chan::linesForSet(h.l1().layout(), 13, lines, 0x100);
    double sink = 0.0;
    auto res = measure("pointer-chase", "hierarchy",
                       "{\"platform\":\"xeonE5-2650\",\"lines\":16}",
                       budgetSec, lines, [&]() {
                           sink += chan::measureChaseOffline(
                               h, 1, space, order, noise);
                       });
    if (sink < 0.0)
        std::cerr << "";
    return res;
}

/**
 * trace-step: the smt-step workload measured as a pair. "flat" runs
 * the trace-compiled engine (NoiseModel::traceExecution on, the
 * production default): each program's MemOps execute as whole
 * compiled slices. "reference" forces per-op stepping through the
 * virtual Program::next()/onResult() protocol — the pre-trace
 * engine. Both paths are bit-identical (tests/test_trace_equivalence)
 * so the ratio is pure dispatch overhead.
 */
BenchResult
benchTraceStep(const std::string &impl, double budgetSec)
{
    Rng rng(8);
    HierarchyParams hp = xeonE5_2650Params();
    Hierarchy h(hp, &rng);
    NoiseModel noise;
    noise.traceExecution = impl == "flat";
    SmtCore core(h, noise, rng);
    TraceProgram a({MemOp::load(0x1000), MemOp::store(0x2000)}, true);
    TraceProgram b({MemOp::load(0x3000)}, true);
    core.addThread(&a, AddressSpace(1));
    core.addThread(&b, AddressSpace(2));
    const Cycles step = 10000;
    Cycles horizon = step;
    return measure("trace-step", impl,
                   "{\"threads\":2,\"unit\":\"cycles\"}", budgetSec,
                   step, [&]() {
                       core.run(horizon);
                       horizon += step;
                   });
}

/**
 * sweep-scaling-<N>t: a fixed 8-cell channel work-list fanned over a
 * SweepRunner pool with N workers; ops are cells. The 1t/2t/4t/8t
 * family tracks the thread-pool's wall-clock scaling on the build
 * machine (ideal on idle multi-core hosts, flat on single-CPU CI
 * runners — docs/PERF.md records both).
 */
BenchResult
benchSweepScaling(unsigned threads, double budgetSec)
{
    const std::size_t cells = 8;
    SweepRunner pool(threads);
    return measure(
        "sweep-scaling-" + std::to_string(threads) + "t", "sweep",
        "{\"cells\":" + std::to_string(cells) +
            ",\"threads\":" + std::to_string(threads) +
            ",\"unit\":\"cells\"}",
        budgetSec, cells, [&]() {
            pool.run(cells, [](std::size_t i) {
                chan::ChannelConfig cfg;
                cfg.protocol.frames = 1;
                cfg.calibration.measurements = 10;
                cfg.seed = 1 + i;
                (void)chan::runChannel(cfg);
            });
        });
}

/** smt-step: two looping trace threads; ops are simulated cycles. */
BenchResult
benchSmtStep(double budgetSec)
{
    Rng rng(8);
    HierarchyParams hp = xeonE5_2650Params();
    Hierarchy h(hp, &rng);
    SmtCore core(h, NoiseModel(), rng);
    TraceProgram a({MemOp::load(0x1000), MemOp::store(0x2000)}, true);
    TraceProgram b({MemOp::load(0x3000)}, true);
    core.addThread(&a, AddressSpace(1));
    core.addThread(&b, AddressSpace(2));
    const Cycles step = 10000;
    Cycles horizon = step;
    return measure("smt-step", "hierarchy",
                   "{\"threads\":2,\"unit\":\"cycles\"}", budgetSec,
                   step, [&]() {
                       core.run(horizon);
                       horizon += step;
                   });
}

/**
 * multicore-access: the hierarchy-access miss-heavy sweep driven
 * through one core of a 2-core MultiCoreSystem — the same workload
 * plus the coherence layer (remote snoop scans on every L2 miss), so
 * the multi-core engine's overhead over the single-core Hierarchy
 * stays visible in the trajectory.
 */
BenchResult
benchMulticoreAccess(double budgetSec)
{
    Rng rng(5);
    HierarchyParams hp = xeonE5_2650Params();
    hp.lat.noiseSigma = 0.0;
    MultiCoreSystem mc(hp, /*cores=*/2, &rng);
    std::vector<Addr> addrs;
    for (Addr a = 0; a < 0x10000; a += 64)
        addrs.push_back(a);
    return measure("multicore-access", "multicore",
                   "{\"platform\":\"xeonE5-2650\",\"cores\":2,"
                   "\"missHeavy\":true}",
                   budgetSec, addrs.size(), [&]() {
                       (void)mc.accessBatch(0, 0, addrs,
                                            /*isWrite=*/false);
                   });
}

/**
 * llc-slice-evict: a dirty 4W-per-set sweep over eight LLC sets of the
 * sliced 16-core preset while three other cores keep sharer copies
 * resident, so every LLC eviction runs the inclusive back-invalidation
 * path. Measured as a pair: "flat" uses the per-slice sharer directory
 * (the production default, ~O(sharers) per event), "reference" forces
 * the pre-directory scan over all 16 cores' private hierarchies
 * (setDirectoryCoherence(false)). Both are bit-identical
 * (tests/test_sliced_llc) so the ratio is pure coherence-walk cost.
 */
BenchResult
benchLlcSliceEvict(const std::string &impl, double budgetSec)
{
    const Platform &plat = platform("dc-sliced-16core");
    Rng rng(10);
    MultiCoreSystem mc(plat.params, plat.cores, &rng);
    if (impl == "reference")
        mc.setDirectoryCoherence(false);
    const AddressLayout llcLayout(plat.params.llc.numSets());
    const unsigned ways = plat.params.llc.ways;
    const unsigned sets = 8;
    const unsigned sharers = 3;
    std::vector<Addr> held;   // one W-deep pool per set, kept shared
    std::vector<Addr> sweep;  // 4W distinct tags per set, written dirty
    for (unsigned set = 0; set < sets; ++set) {
        for (Addr a : chan::linesForSet(llcLayout, set, ways, 1))
            held.push_back(a);
        for (Addr a : chan::linesForSet(llcLayout, set, 4 * ways, 0x200))
            sweep.push_back(a);
    }
    return measure("llc-slice-evict", impl,
                   "{\"platform\":\"dc-sliced-16core\",\"cores\":16,"
                   "\"sets\":8,\"sharers\":3,\"asDirty\":true}",
                   budgetSec, sweep.size(), [&]() {
                       // Re-establish the sharer copies the previous
                       // pass back-invalidated, then evict them again.
                       for (unsigned c = 1; c <= sharers; ++c)
                           (void)mc.accessBatch(c, 0, held,
                                                /*isWrite=*/false);
                       (void)mc.accessBatch(0, 0, sweep,
                                            /*isWrite=*/true);
                   });
}

/**
 * tenant-frame: one small many-tenant sweep end to end — slice-blind
 * eviction-set discovery, cooperative sender-line search, training and
 * payload slots — on the sliced 16-core preset; ops are payload bits
 * across the pairs. Tracks the tenant harness's full-pipeline cost
 * (the scaling curves live in examples/tenant_scaling.cpp).
 */
BenchResult
benchTenantFrame(double budgetSec)
{
    chan::TenantSweepConfig cfg;
    cfg.usePlatform("dc-sliced-16core");
    cfg.pairs = 2;
    cfg.payloadBits = 64;
    cfg.seed = 1;
    return measure("tenant-frame", "multicore",
                   "{\"platform\":\"dc-sliced-16core\",\"pairs\":2,"
                   "\"unit\":\"bits\"}",
                   budgetSec, cfg.pairs * cfg.payloadBits,
                   [&]() { (void)chan::runTenantSweep(cfg); });
}

/** A program that does nothing but paced spin-waits. */
class SpinProgram : public Program
{
  public:
    explicit SpinProgram(Cycles period) : period_(period) {}

    std::optional<MemOp>
    next(ProcView &view) override
    {
        return MemOp::spinUntil(view.now() + period_);
    }

    void onResult(const MemOp &, const OpResult &, ProcView &) override {}

  private:
    Cycles period_;
};

/**
 * spin-step: two threads whose execution is purely spin-waits, the
 * regime channel senders/receivers spend most of their virtual time
 * in (one spin-stack access per wait). Ops are simulated cycles.
 */
BenchResult
benchSpinStep(double budgetSec)
{
    Rng rng(8);
    HierarchyParams hp = xeonE5_2650Params();
    Hierarchy h(hp, &rng);
    SmtCore core(h, NoiseModel(), rng);
    SpinProgram a(200);
    SpinProgram b(200);
    core.addThread(&a, AddressSpace(1));
    core.addThread(&b, AddressSpace(2));
    const Cycles step = 10000;
    Cycles horizon = step;
    return measure("spin-step", "hierarchy",
                   "{\"threads\":2,\"spinPeriod\":200,\"unit\":\"cycles\"}",
                   budgetSec, step, [&]() {
                       core.run(horizon);
                       horizon += step;
                   });
}

/** channel-frame: one 128-bit frame end to end; ops are payload bits. */
BenchResult
benchChannelFrame(double budgetSec)
{
    chan::ChannelConfig cfg;
    cfg.protocol.frames = 1;
    cfg.calibration.measurements = 20;
    cfg.seed = 1;
    return measure("channel-frame", "hierarchy",
                   "{\"frames\":1,\"ts\":5500,\"unit\":\"bits\"}",
                   budgetSec, cfg.protocol.frameBits,
                   [&]() { (void)chan::runChannel(cfg); });
}

/**
 * cross-core-frame: one cross-core frame (sender core 0, receiver
 * core 1, shared inclusive LLC) end to end; ops are payload bits.
 */
BenchResult
benchCrossCoreFrame(double budgetSec)
{
    chan::CrossCoreChannelConfig cfg;
    cfg.usePlatform("desktop-inclusive-4core");
    cfg.protocol.frames = 1;
    cfg.calibration.measurements = 20;
    cfg.seed = 1;
    return measure("cross-core-frame", "multicore",
                   "{\"frames\":1,\"cores\":4,\"unit\":\"bits\"}",
                   budgetSec, cfg.protocol.frameBits,
                   [&]() { (void)chan::runCrossCoreChannel(cfg); });
}

/**
 * noise-frame: one single-core frame under the OS-noise scheduler
 * (two mixed co-runners time-sharing the core, context-switch
 * pollution) — the Table-VII regime end to end; ops are payload
 * bits. Tracks the scheduler layer's overhead trajectory.
 */
BenchResult
benchNoiseFrame(double budgetSec)
{
    chan::ChannelConfig cfg;
    cfg.protocol.frames = 1;
    cfg.calibration.measurements = 20;
    cfg.seed = 1;
    cfg.scheduler = platform(kDefaultPlatform).noisePreset;
    cfg.scheduler.coRunners = SchedulerConfig::mixOf(2);
    return measure("noise-frame", "scheduler",
                   "{\"frames\":1,\"coRunners\":2,\"unit\":\"bits\"}",
                   budgetSec, cfg.protocol.frameBits,
                   [&]() { (void)chan::runChannel(cfg); });
}

/**
 * transport-frame: one full transport session (framing, FrameSync,
 * selective-repeat ARQ, adaptive rate) over the single-core channel on
 * a quiet platform; ops are delivered payload bits. Tracks the
 * transport stack's overhead on top of the raw channel path.
 */
BenchResult
benchTransportFrame(double budgetSec)
{
    chan::ChannelConfig cfg;
    cfg.calibration.measurements = 20;
    cfg.seed = 1;
    cfg.transport.enabled = true;
    cfg.transport.layout.seqBits = 4;
    cfg.transport.layout.payloadBits = 24;
    cfg.transport.layout.interleaveDepth = 2;
    cfg.transport.messageFrames = 2;
    cfg.transport.windowFrames = 2;
    cfg.transport.maxRounds = 4;
    const unsigned payloadBits =
        cfg.transport.messageFrames * cfg.transport.layout.payloadBits;
    return measure("transport-frame", "transport",
                   "{\"frames\":2,\"payloadBits\":24,\"unit\":\"bits\"}",
                   budgetSec, payloadBits,
                   [&]() { (void)chan::runTransport(cfg); });
}

/** calibration: one offline calibrate() per call; ops = measurements. */
BenchResult
benchCalibration(double budgetSec)
{
    HierarchyParams hp = xeonE5_2650Params();
    NoiseModel noise;
    chan::CalibrationConfig cfg;
    cfg.measurements = 50;
    return measure("calibration", "hierarchy",
                   "{\"measurements\":50,\"unit\":\"measurements\"}",
                   budgetSec, cfg.measurements, [&]() {
                       Rng rng(3);
                       (void)chan::calibrate(hp, noise, cfg, rng);
                   });
}

void
writeJson(const std::vector<BenchResult> &results,
          const std::string &path, bool quick)
{
    std::ofstream out(path);
    if (!out) {
        std::cerr << "bench_micro: cannot write " << path << "\n";
        std::exit(1);
    }
    out << "{\n  \"bench\": \"micro\",\n  \"quick\": "
        << (quick ? "true" : "false") << ",\n  \"workloads\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        out << "    {\"name\": \"" << r.name << "\", \"impl\": \""
            << r.impl << "\", \"ops_per_sec\": " << std::fixed
            << r.opsPerSec << ", \"ops\": " << r.ops
            << ", \"elapsed_sec\": " << r.elapsedSec
            << ", \"config\": " << r.configJson << "}"
            << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"speedup_vs_reference\": {\n";
    bool first = true;
    for (const auto &r : results) {
        if (r.impl != "flat")
            continue;
        for (const auto &ref : results) {
            if (ref.impl == "reference" && ref.name == r.name &&
                ref.opsPerSec > 0.0) {
                out << (first ? "" : ",\n") << "    \"" << r.name
                    << "\": " << std::setprecision(2)
                    << r.opsPerSec / ref.opsPerSec;
                first = false;
            }
        }
    }
    out << "\n  }\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    std::string outPath = "BENCH_micro.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            outPath = argv[++i];
        } else {
            std::cerr << "usage: bench_micro [--quick] [--out FILE]\n";
            return 2;
        }
    }
    const double budget = quick ? 0.08 : 0.4;
    gWindows = quick ? 5 : 3;

    std::vector<BenchResult> results;
    results.push_back(benchProbeHit<Cache>("flat", budget));
    results.push_back(benchProbeHit<RefCache>("reference", budget));
    results.push_back(benchFillEvict<Cache>("flat", budget));
    results.push_back(benchFillEvict<RefCache>("reference", budget));
    results.push_back(benchPartitioned<Cache>("flat", budget));
    results.push_back(benchPartitioned<RefCache>("reference", budget));
    results.push_back(benchPlcacheLocked<Cache>("flat", budget));
    results.push_back(benchPlcacheLocked<RefCache>("reference", budget));
    results.push_back(benchHierarchyAccess("flat", budget));
    results.push_back(benchHierarchyAccess("reference", budget));
    results.push_back(benchMulticoreAccess(budget));
    results.push_back(benchLlcSliceEvict("flat", budget));
    results.push_back(benchLlcSliceEvict("reference", budget));
    results.push_back(benchHierarchyDirtyEvict(budget));
    results.push_back(benchPointerChase(budget));
    results.push_back(benchSmtStep(budget));
    results.push_back(benchTraceStep("flat", budget));
    results.push_back(benchTraceStep("reference", budget));
    results.push_back(benchSpinStep(budget));
    results.push_back(benchChannelFrame(budget));
    results.push_back(benchCrossCoreFrame(budget));
    results.push_back(benchNoiseFrame(budget));
    results.push_back(benchTransportFrame(budget));
    results.push_back(benchTenantFrame(budget));
    results.push_back(benchCalibration(budget));
    results.push_back(benchEditDistance(budget));
    // Last on purpose: the multi-threaded windows can exhaust a
    // burstable host's CPU credits and throttle whatever runs next.
    for (unsigned threads : {1u, 2u, 4u, 8u})
        results.push_back(benchSweepScaling(threads, budget));

    for (const auto &r : results) {
        std::cout << r.name << " [" << r.impl << "]: " << std::fixed
                  << std::setprecision(0) << r.opsPerSec
                  << " ops/s\n";
    }
    writeJson(results, outPath, quick);
    std::cout << "wrote " << outPath << "\n";
    return 0;
}
