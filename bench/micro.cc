/**
 * @file
 * google-benchmark microbenchmarks of the library's hot paths: the
 * cache/hierarchy access machinery, pointer-chase measurement, SMT
 * stepping, edit-distance scoring and a full channel slot. These keep
 * the simulator fast enough for the 90-frame sweeps the paper-scale
 * experiments need.
 */

#include <benchmark/benchmark.h>

#include "chan/calibration.hh"
#include "chan/channel.hh"
#include "chan/set_mapping.hh"
#include "common/edit_distance.hh"
#include "sim/hierarchy.hh"
#include "sim/smt_core.hh"

using namespace wb;

namespace
{

void
BM_CacheAccess(benchmark::State &state)
{
    Rng rng(1);
    sim::HierarchyParams hp = sim::xeonE5_2650Params();
    hp.lat.noiseSigma = 0.0;
    sim::Hierarchy h(hp, &rng);
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(h.access(0, a, false));
        a = (a + 64) & 0xffff;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_DirtyEvictionPath(benchmark::State &state)
{
    Rng rng(1);
    sim::HierarchyParams hp = sim::xeonE5_2650Params();
    sim::Hierarchy h(hp, &rng);
    const auto &layout = h.l1().layout();
    Addr tag = 1;
    for (auto _ : state) {
        // Store (dirty) then force an eviction next lap.
        benchmark::DoNotOptimize(
            h.access(0, layout.compose(9, tag), true));
        tag = tag % 64 + 1;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DirtyEvictionPath);

void
BM_PointerChaseMeasurement(benchmark::State &state)
{
    Rng rng(1);
    sim::HierarchyParams hp = sim::xeonE5_2650Params();
    sim::Hierarchy h(hp, &rng);
    sim::NoiseModel noise;
    sim::AddressSpace space(2);
    auto lines = chan::linesForSet(h.l1().layout(), 13,
                                   unsigned(state.range(0)), 0x100);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            chan::measureChaseOffline(h, 1, space, lines, noise));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PointerChaseMeasurement)->Arg(10)->Arg(16);

void
BM_SmtCoreStep(benchmark::State &state)
{
    Rng rng(1);
    sim::HierarchyParams hp = sim::xeonE5_2650Params();
    sim::Hierarchy h(hp, &rng);
    sim::SmtCore core(h, sim::NoiseModel(), rng);
    sim::TraceProgram a({sim::MemOp::load(0x1000),
                         sim::MemOp::store(0x2000)},
                        true);
    sim::TraceProgram b({sim::MemOp::load(0x3000)}, true);
    core.addThread(&a, sim::AddressSpace(1));
    core.addThread(&b, sim::AddressSpace(2));
    Cycles horizon = 10000;
    for (auto _ : state) {
        core.run(horizon);
        horizon += 10000;
    }
}
BENCHMARK(BM_SmtCoreStep);

void
BM_EditDistance128(benchmark::State &state)
{
    Rng rng(7);
    const BitVec a = randomBits(128, rng);
    BitVec b = a;
    b[17] = !b[17];
    b.erase(b.begin() + 63);
    for (auto _ : state)
        benchmark::DoNotOptimize(editDistance(a, b));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EditDistance128);

void
BM_FullChannelFrame(benchmark::State &state)
{
    // One 128-bit frame end to end (calibration excluded via a small
    // budget): the unit of every Fig. 5-7 experiment.
    for (auto _ : state) {
        chan::ChannelConfig cfg;
        cfg.protocol.ts = cfg.protocol.tr = Cycles(state.range(0));
        cfg.protocol.frames = 1;
        cfg.calibration.measurements = 20;
        cfg.seed = 1;
        benchmark::DoNotOptimize(chan::runChannel(cfg));
    }
    state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_FullChannelFrame)->Arg(800)->Arg(5500);

void
BM_Calibration(benchmark::State &state)
{
    sim::HierarchyParams hp = sim::xeonE5_2650Params();
    sim::NoiseModel noise;
    for (auto _ : state) {
        Rng rng(3);
        chan::CalibrationConfig cfg;
        cfg.measurements = unsigned(state.range(0));
        benchmark::DoNotOptimize(
            chan::calibrate(hp, noise, cfg, rng));
    }
}
BENCHMARK(BM_Calibration)->Arg(50)->Arg(200);

} // namespace

BENCHMARK_MAIN();
