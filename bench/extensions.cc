/**
 * @file
 * Beyond-the-paper extensions, each rooted in a claim the paper makes
 * but does not evaluate:
 *
 *  1. the WB channel on the L2 cache (Sec. III: "can be deployed...
 *     also on other cache levels... requires more operations from the
 *     sender");
 *  2. striping across multiple target sets (the paper's bandwidths are
 *     per set);
 *  3. a perf-counter detector (Sec. VII claims detection cannot
 *     separate the channel from benign co-runners — quantified here);
 *  4. Hamming(7,4)+interleaving FEC (Sec. V: "more complex encoding
 *     mechanisms may achieve higher information transmission rates").
 */

#include <iostream>

#include "chan/fec.hh"
#include "chan/l2_channel.hh"
#include "chan/multiset.hh"
#include "common/table.hh"
#include "perfmon/detector.hh"

using namespace wb;

int
main()
{
    // ---------------------------------------------------- L2 channel
    banner(std::cout, "Extension 1: WB channel on the L2 cache");
    Table t1("Sender pushes each dirty line from L1 into L2 via an "
             "L1-set sweep");
    t1.header({"d", "BER", "rate", "signal (cyc)",
               "sender loads/bit"});
    for (unsigned d : {2u, 4u, 8u}) {
        chan::L2ChannelConfig cfg;
        cfg.d = d;
        cfg.frames = 15;
        cfg.seed = 3;
        auto res = chan::runL2Channel(cfg);
        const double bits =
            double(cfg.frames) * cfg.frameBits;
        t1.row({std::to_string(d), Table::pct(res.ber, 2),
                Table::num(res.rateKbps, 0) + " kbps",
                Table::num(res.calibrationMedians[1] -
                               res.calibrationMedians[0],
                           0),
                Table::num(double(res.senderCounters.loads) / bits, 1)});
    }
    t1.note("Signal = L2 dirty-evict penalty per line (16 cyc). The "
            "slot must fit d x (store + pusher sweep): ~30x slower "
            "than the L1 channel but it crosses the L1 boundary "
            "(survives L1-only partitioning).");
    t1.print(std::cout);

    // ------------------------------------------------ multi-set
    banner(std::cout,
           "Extension 2: striping across k target sets");
    Table t2("d=4 per set; aggregate rate = k x per-set rate");
    t2.header({"k", "Ts", "aggregate rate", "BER", "goodput"});
    for (auto [k, ts] :
         {std::pair<unsigned, Cycles>{1, 5500}, {2, 5500}, {4, 5500},
          {8, 5500}, {4, 2750}, {6, 2750}, {8, 2750}}) {
        chan::MultiSetConfig cfg;
        cfg.setCount = k;
        cfg.ts = cfg.tr = ts;
        cfg.frames = 15;
        cfg.seed = 3;
        auto res = chan::runMultiSetChannel(cfg);
        t2.row({std::to_string(k), std::to_string(ts),
                Table::num(res.rateKbps, 0) + " kbps",
                Table::pct(res.ber, 2),
                Table::num(res.goodputKbps, 0) + " kbps"});
    }
    t2.note("Scaling is clean until the receiver's k timed chases no "
            "longer fit the slot (~250 cycles each): the L1-wide "
            "ceiling sits near 8-9 Mbps on this platform.");
    t2.print(std::cout);

    // ------------------------------------------------- detector
    banner(std::cout,
           "Extension 3: perf-counter detector (Sec. VII quantified)");
    using perfmon::Workload;
    const std::vector<Workload> ws = {
        Workload::Idle,         Workload::WbChannel,
        Workload::WbChannelD8,  Workload::LruChannel,
        Workload::CompilerPair, Workload::Streaming};
    std::vector<std::vector<perfmon::WindowFeatures>> traces;
    for (auto w : ws)
        traces.push_back(perfmon::collectTrace(w, 40, 1000000, 7));

    Table t3("Mean per-1k-cycle core counters over 40 windows of 1M "
             "cycles");
    t3.header({"workload", "writebacks/kc", "L1 miss/kc"});
    for (std::size_t i = 0; i < ws.size(); ++i) {
        double mw = 0, mm = 0;
        for (const auto &f : traces[i]) {
            mw += f.writebacksPerKcycle;
            mm += f.l1MissPerKcycle;
        }
        t3.row({perfmon::workloadName(ws[i]),
                Table::num(mw / 40, 3), Table::num(mm / 40, 2)});
    }
    t3.print(std::cout);

    Table t4("\nAlarm rates of a write-back-rate threshold detector");
    t4.header({"threshold", "WB d=1", "WB d=8", "benign g++ pair"});
    for (double thr : {0.02, 0.2, 1.0, 8.0}) {
        auto rows = perfmon::thresholdDetector(traces, ws, thr);
        t4.row({Table::num(thr, 2), Table::pct(rows[1].alarmRate, 0),
                Table::pct(rows[2].alarmRate, 0),
                Table::pct(rows[4].alarmRate, 0)});
    }
    t4.note("Any threshold that catches the channel fires on every "
            "benign compiler window: the WB sender hides *under* the "
            "benign write-back floor, 2-3 orders of magnitude down.");
    t4.print(std::cout);

    // ------------------------------------------------------ FEC
    banner(std::cout,
           "Extension 4: Hamming(7,4)+interleave FEC over the channel");
    Table t5("Residual data BER after coding vs raw channel BER "
             "(binary symmetric model, cross-checked by tests)");
    t5.header({"raw flip rate", "residual (depth 8)",
               "net goodput factor"});
    for (double p : {0.01, 0.03, 0.05, 0.08, 0.12}) {
        chan::HammingCode code(8);
        const double residual =
            chan::simulateResidualBer(code, p, 40000, 11);
        // Goodput factor vs uncoded: rate x (1-residual)/(1-p) ... the
        // interesting number is simply rate penalty vs error win.
        const double factor =
            (4.0 / 7.0) * (1.0 - residual) / (1.0 - p);
        t5.row({Table::pct(p, 1), Table::pct(residual, 2),
                Table::num(factor, 2)});
    }
    t5.note("Coding pays off for correctness-critical payloads once "
            "raw BER exceeds a few percent (e.g. d=1 beyond 2 Mbps); "
            "for raw throughput the uncoded channel still wins, which "
            "matches the paper's choice to report raw rates.");
    t5.print(std::cout);
    return 0;
}
