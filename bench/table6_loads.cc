/**
 * @file
 * Reproduces paper Table VI: cache loads per unit time of the sender
 * process, WB channel vs. LRU channel (whole-slot modulation), at
 * Ts = 11000 cycles. The headline is the ratio: the WB sender's
 * footprint is ~59.8% of the LRU sender's.
 */

#include <iostream>

#include "common/table.hh"
#include "perfmon/stealth.hh"

using namespace wb;

namespace
{

std::string
sci(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3e", v);
    return buf;
}

} // namespace

int
main()
{
    banner(std::cout,
           "Table VI: sender cache loads per second (Ts = 11000)");

    auto cmp = perfmon::compareSenderFootprints(11000, 10, 7);

    Table t("Per-second counts (paper reports the same magnitudes; "
            "its 'per millisecond' label is off by 1000x)");
    t.header({"level", "WB sender", "LRU sender", "paper WB",
              "paper LRU"});
    t.row({"L1", sci(cmp.wb.l1PerSec), sci(cmp.lru.l1PerSec),
           "3.151e+08", "5.265e+08"});
    t.row({"L2", sci(cmp.wb.l2PerSec), sci(cmp.lru.l2PerSec),
           "1.217e+05", "6.840e+04"});
    t.row({"LLC", sci(cmp.wb.llcPerSec), sci(cmp.lru.llcPerSec),
           "2.203e+03", "2.213e+03"});
    t.row({"Total", sci(cmp.wb.totalPerSec), sci(cmp.lru.totalPerSec),
           "3.153e+08", "5.266e+08"});
    t.note("WB/LRU total ratio: " + Table::pct(cmp.ratio, 1) +
           "  (paper: 59.8%)");
    t.note("The WB sender modulates each bit once and spins; the LRU "
           "sender must touch its line continuously for the whole "
           "slot, roughly doubling its retired-load footprint.");
    t.print(std::cout);
    return 0;
}
