/**
 * @file
 * Reproduces the Sec. IX side-channel experiments: the three attack
 * scenarios against secret-dependent victims, the serial-line
 * requirement of scenario 3, and an end-to-end key recovery.
 */

#include <iostream>

#include "common/table.hh"
#include "sidechan/attack.hh"

using namespace wb;
using namespace wb::sidechan;

int
main()
{
    banner(std::cout, "Sec. IX: WB side-channel scenarios");

    Table t("500 secrets per cell, self-calibrated thresholds");
    t.header({"scenario", "gadget", "accuracy", "lat(secret=0)",
              "lat(secret=1)"});
    auto runRow = [&](Scenario s, const char *name, const char *gadget,
                      unsigned serial) {
        AttackConfig cfg;
        cfg.scenario = s;
        cfg.serialLines = serial;
        cfg.trials = 500;
        cfg.seed = 9;
        auto res = runAttack(cfg);
        t.row({name, gadget, Table::pct(res.accuracy, 1),
               Table::num(res.meanLatency0, 0),
               Table::num(res.meanLatency1, 0)});
    };
    runRow(Scenario::DirtyProbe, "1: probe set m after victim",
           "store branch", 1);
    runRow(Scenario::DirtyPrime, "2: dirty-prime set m (read-only key)",
           "load branch", 1);
    runRow(Scenario::VictimTiming, "3: time the victim call",
           "load branch", 2);
    t.note("Scenario 1: a victim store leaves a dirty line -> slower "
           "probe. Scenario 2: a victim load evicts one of the "
           "attacker's dirty lines -> cheaper probe. Scenario 3: the "
           "victim itself pays the write-back.");
    t.print(std::cout);

    Table t2("\nScenario 3 vs. serial lines per branch (paper: needs "
             ">= 2)");
    t2.header({"serial lines", "accuracy"});
    for (unsigned serial : {1u, 2u, 3u, 4u}) {
        AttackConfig cfg;
        cfg.scenario = Scenario::VictimTiming;
        cfg.serialLines = serial;
        cfg.trials = 500;
        cfg.seed = 9;
        t2.row({std::to_string(serial),
                Table::pct(runAttack(cfg).accuracy, 1)});
    }
    t2.note("Paper: \"only when each branch loads two cache lines "
            "serially can the attacker clearly observe the time "
            "difference\" - single-line timing drowns in call "
            "overhead noise.");
    t2.print(std::cout);

    const unsigned recovered = recoverKeyDemo(128, 5, 11);
    std::cout << "\nKey recovery demo (scenario 1, 5 votes/bit): "
              << recovered << "/128 key bits recovered\n";

    // Defended victims (the setting Sec. VIII's arguments target).
    Table t3("\nScenario 1 against defended victims");
    t3.header({"victim's platform", "attack accuracy"});
    auto defended = [&](const char *name, auto mutate) {
        AttackConfig cfg;
        cfg.scenario = Scenario::DirtyProbe;
        cfg.trials = 400;
        cfg.seed = 17;
        mutate(cfg);
        t3.row({name, Table::pct(runAttack(cfg).accuracy, 1)});
    };
    defended("write-back (undefended)", [](AttackConfig &) {});
    defended("write-through L1", [](AttackConfig &cfg) {
        cfg.platform.l1.writePolicy = sim::WritePolicy::WriteThrough;
    });
    defended("PLcache (lock on write)", [](AttackConfig &cfg) {
        cfg.platform.l1.lockOnWrite = true;
    });
    defended("random replacement (L=14)", [](AttackConfig &cfg) {
        cfg.platform.l1.policy = sim::PolicyKind::RandomIid;
        cfg.replacementSize = 14;
    });
    t3.note("Write-through and PLcache reduce the attack to coin "
            "flipping; random replacement only adds noise - the same "
            "verdicts as the covert-channel evaluation.");
    t3.print(std::cout);
    return 0;
}
