/**
 * @file
 * End-to-end exfiltration demo composing the extensions: a payload is
 * FEC-encoded (Hamming(7,4), depth-8 interleaving), striped across 4
 * target sets, transmitted at an aggressive rate, de-striped, decoded
 * and error-corrected.
 *
 *   $ ./exfiltrate [setCount] [ts]
 */

#include <cstdlib>
#include <iostream>

#include "chan/fec.hh"
#include "chan/multiset.hh"
#include "common/table.hh"

using namespace wb;
using namespace wb::chan;

int
main(int argc, char **argv)
{
    const unsigned k = argc > 1 ? unsigned(std::atoi(argv[1])) : 4u;
    const Cycles ts = argc > 2 ? Cycles(std::atoll(argv[2])) : 2750u;

    const std::string payload =
        "The write-back policy is generally deployed in current "
        "processors.";
    const BitVec data = fromString(payload);

    HammingCode code(8);
    const BitVec coded = code.encode(data);

    banner(std::cout, "FEC + multi-set exfiltration");
    std::cout << "  payload: " << payload.size() << " bytes -> "
              << data.size() << " data bits -> " << coded.size()
              << " coded bits (rate 4/7, depth-8 interleave)\n";

    // Ship the coded bits through the striped channel. We reuse the
    // frame machinery by transmitting the coded stream as the payload
    // of consecutive frames.
    MultiSetConfig cfg;
    cfg.setCount = k;
    cfg.ts = cfg.tr = ts;
    cfg.frames = 12;
    cfg.seed = 5;
    auto res = runMultiSetChannel(cfg);
    std::cout << "  channel: " << k << " sets, Ts=" << ts << " -> "
              << Table::num(res.rateKbps, 0) << " kbps aggregate, raw "
              << "BER " << Table::pct(res.ber, 2) << "\n";

    // Emulate the payload's journey at the measured flip rate: the
    // frame experiment above established the channel's raw BER; apply
    // it to the coded payload and correct.
    const double rawBer = std::min(0.49, res.ber);
    Rng rng(7);
    BitVec received = coded;
    std::size_t flips = 0;
    for (std::size_t i = 0; i < received.size(); ++i) {
        if (rng.chance(rawBer)) {
            received[i] = !received[i];
            ++flips;
        }
    }
    const BitVec corrected = code.decode(received);
    BitVec trimmed(corrected.begin(),
                   corrected.begin() +
                       static_cast<std::ptrdiff_t>(data.size()));
    std::size_t residual = 0;
    for (std::size_t i = 0; i < data.size(); ++i)
        if (trimmed[i] != data[i])
            ++residual;

    std::cout << "  transit: " << flips << " bit flips injected at the "
              << "measured rate\n"
              << "  after FEC: " << residual << " residual bit errors\n"
              << "  decoded: \"" << toString(trimmed) << "\"\n";

    const double seconds =
        double(coded.size() / k) * double(ts) / 2.2e9;
    std::cout << "  wall time on the wire: "
              << Table::num(seconds * 1e6, 0) << " us at 2.2 GHz\n";
    return residual == 0 ? 0 : 1;
}
