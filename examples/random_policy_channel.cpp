/**
 * @file
 * The WB channel on a cache with *random* replacement (paper
 * Sec. VI-A): replacement-state channels die, but the dirty-state
 * channel survives once the sender uses more lines and the receiver a
 * larger replacement set.
 *
 *   $ ./random_policy_channel [d] [L]
 */

#include <cstdlib>
#include <iostream>

#include "chan/channel.hh"
#include "sim/eviction_probe.hh"
#include "common/table.hh"

using namespace wb;
using namespace wb::chan;

int
main(int argc, char **argv)
{
    const unsigned d = argc > 1 ? unsigned(std::atoi(argv[1])) : 8u;
    const unsigned L = argc > 2 ? unsigned(std::atoi(argv[2])) : 16u;

    ChannelConfig cfg;
    cfg.platform.l1.policy = sim::PolicyKind::RandomIid;
    cfg.protocol.ts = cfg.protocol.tr = 5500;
    cfg.protocol.encoding = Encoding::binary(d);
    cfg.protocol.replacementSize = L;
    cfg.protocol.frames = 20;
    cfg.seed = 9;

    banner(std::cout, "WB channel under random replacement");
    std::cout << "  P[>=1 of d dirty lines evicted per sweep] = "
              << Table::pct(
                     sim::iidEvictionProbability(8, d, L), 1)
              << "  (analytic, W=8, d=" << d << ", L=" << L << ")\n";

    auto res = runChannel(cfg);
    std::cout << "  measured BER at 400 kbps: "
              << Table::pct(res.ber, 2) << "  (aligned: "
              << (res.aligned ? "yes" : "no") << ")\n";
    std::cout << "\n  Try ./random_policy_channel 1 8 to see why weak "
                 "operating points fail,\n  and 3 12 for the paper's "
                 "analytic suggestion.\n";
    return res.ber < 0.15 ? 0 : 1;
}
