/**
 * @file
 * Capacity frontier of the WB channels under OS noise: raw rate x
 * error rate x effective goodput, swept over co-runner mixes and
 * migration periods on the multi-core platform presets, with the
 * resilient transport (chan/transport.hh) on and off.
 *
 *   $ ./example_capacity_frontier [seeds]
 *
 * Each row contrasts the legacy single-shot protocol against the
 * transport session on the identical platform/noise/seed pool:
 *
 *  - "raw kbps"   — the channel's configured symbol rate;
 *  - "1shot BER"  — edit-distance BER of the single-shot run (this is
 *    the number that collapses to ~79% once a co-runner time-shares a
 *    party core, docs/SCHEDULER.md);
 *  - "1shot good" — its rate x (1 - BER) goodput, which overstates a
 *    collapsed channel (random bits still "count");
 *  - "xport good" — the transport's honest goodput: CRC-validated
 *    payload bits over total simulated time, retransmissions and
 *    rate fallback included;
 *  - "dlvr"       — frames delivered / total, "rung" the final rate
 *    ladder level, "sync" the resync + sync-loss events absorbed.
 *
 * CI uploads this output as the capacity-frontier artifact; the
 * reference run is summarized in docs/TRANSPORT.md.
 *
 * `-j N` fans the frontier cells over a sim::SweepRunner pool; cells
 * are assembled in fixed (platform, mix, migration) order, so the
 * output is byte-identical at any -j.
 */

#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "chan/cross_core.hh"
#include "chan/transport.hh"
#include "common/table.hh"
#include "sim/platform.hh"
#include "sim/scheduler.hh"
#include "sim/sweep_runner.hh"

using namespace wb;

namespace
{

unsigned gSeeds = 3;

/** One cell of the frontier, averaged over the seed pool. */
struct FrontierPoint
{
    double rawKbps = 0.0;
    double singleShotBer = 0.0;
    double singleShotGoodput = 0.0;
    double transportGoodput = 0.0;
    double deliveredFrac = 0.0;
    double finalRung = 0.0;
    double syncEvents = 0.0;
};

chan::CrossCoreChannelConfig
baseConfig(const std::string &platformName,
           const std::vector<sim::CoRunnerKind> &mix,
           Cycles migrationPeriod)
{
    chan::CrossCoreChannelConfig cfg;
    cfg.usePlatform(platformName);
    cfg.protocol.frames = 2;
    cfg.calibration.measurements = 40;
    cfg.scheduler = sim::platform(platformName).noisePreset;
    cfg.scheduler.coRunners = mix;
    cfg.scheduler.migrationPeriod = migrationPeriod;

    cfg.transport.layout.seqBits = 4;
    cfg.transport.layout.payloadBits = 24;
    cfg.transport.layout.crcWidth = 16;
    cfg.transport.layout.interleaveDepth = 2;
    cfg.transport.messageFrames = 4;
    cfg.transport.windowFrames = 4;
    cfg.transport.maxRetries = 3;
    cfg.transport.maxRounds = 6;
    return cfg;
}

FrontierPoint
measure(const std::string &platformName,
        const std::vector<sim::CoRunnerKind> &mix, Cycles migrationPeriod)
{
    FrontierPoint pt;
    for (unsigned s = 0; s < gSeeds; ++s) {
        chan::CrossCoreChannelConfig cfg =
            baseConfig(platformName, mix, migrationPeriod);
        cfg.seed = 1 + s;

        const chan::ChannelResult single = chan::runCrossCoreChannel(cfg);
        pt.rawKbps += single.rateKbps;
        pt.singleShotBer += single.ber;
        pt.singleShotGoodput += single.goodputKbps;

        cfg.transport.enabled = true;
        const chan::TransportResult xport =
            chan::runCrossCoreTransport(cfg);
        pt.transportGoodput += xport.goodputKbps;
        pt.deliveredFrac += xport.framesTotal
                                ? double(xport.framesDelivered) /
                                      double(xport.framesTotal)
                                : 0.0;
        pt.finalRung += xport.finalRateLevel;
        pt.syncEvents += xport.syncLosses + xport.resyncs;
    }
    pt.rawKbps /= gSeeds;
    pt.singleShotBer /= gSeeds;
    pt.singleShotGoodput /= gSeeds;
    pt.transportGoodput /= gSeeds;
    pt.deliveredFrac /= gSeeds;
    pt.finalRung /= gSeeds;
    pt.syncEvents /= gSeeds;
    return pt;
}

std::string
fixed(double v, int prec)
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(prec);
    os << v;
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned jobs = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "-j") == 0 && i + 1 < argc)
            jobs = unsigned(std::stoul(argv[++i]));
        else
            gSeeds = std::max(1u, unsigned(std::stoul(argv[i])));
    }
    sim::SweepRunner pool(jobs);

    using sim::SchedulerConfig;

    struct MixSpec
    {
        const char *label;
        std::vector<sim::CoRunnerKind> mix;
    };
    const std::vector<MixSpec> mixes = {
        {"none", {}},
        {"2 mixed (free cores)", SchedulerConfig::mixOf(2)},
        {"3 mixed (party core shared)", SchedulerConfig::mixOf(3)},
        {"4 mixed (both parties shared)", SchedulerConfig::mixOf(4)},
    };
    const std::vector<std::pair<const char *, Cycles>> migrations = {
        {"pinned", 0},
        {"400k", 400'000},
    };

    // Flat (platform x mix x migration) work-list: every cell is an
    // independent seed-pool average, fanned over the pool and read
    // back by grid index.
    std::vector<const sim::Platform *> frontier;
    // The frontier is a cross-core story; sliced-LLC presets need
    // runtime eviction-set discovery first and are swept by
    // example_tenant_scaling instead.
    for (const sim::Platform *p : sim::allPlatforms())
        if (p->cores >= 2 && p->params.llcSlices <= 1)
            frontier.push_back(p);
    const std::size_t cellsPerPlatform = mixes.size() * migrations.size();
    const auto points = pool.map<FrontierPoint>(
        frontier.size() * cellsPerPlatform, [&](std::size_t i) {
            const sim::Platform *p = frontier[i / cellsPerPlatform];
            const std::size_t cell = i % cellsPerPlatform;
            const MixSpec &m = mixes[cell / migrations.size()];
            const Cycles period =
                migrations[cell % migrations.size()].second;
            return measure(p->name, m.mix, period);
        });

    for (std::size_t pi = 0; pi < frontier.size(); ++pi) {
        const sim::Platform *p = frontier[pi];
        Table t("Capacity frontier on " + p->name +
                ": single-shot protocol vs resilient transport "
                "(rate x error x goodput per co-runner mix and "
                "migration period)");
        t.header({"co-runners", "migr", "raw kbps", "1shot BER",
                  "1shot good", "xport good", "dlvr", "rung", "sync"});
        std::size_t cell = pi * cellsPerPlatform;
        for (const MixSpec &m : mixes) {
            for (const auto &[migLabel, period] : migrations) {
                (void)period;
                const FrontierPoint &pt = points[cell++];
                t.row({m.label, migLabel, fixed(pt.rawKbps, 1),
                       Table::pct(pt.singleShotBer, 1),
                       fixed(pt.singleShotGoodput, 1),
                       fixed(pt.transportGoodput, 1),
                       Table::pct(pt.deliveredFrac, 0),
                       fixed(pt.finalRung, 1),
                       fixed(pt.syncEvents, 1)});
            }
        }
        t.note("\"1shot good\" counts random bits at high BER; "
               "\"xport good\" only counts CRC-validated payload "
               "bits (retransmissions and rate fallback included).");
        t.note("seeds averaged per cell: " + std::to_string(gSeeds));
        t.print();
        std::cout << "\n";
    }
    return 0;
}
