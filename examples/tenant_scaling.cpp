/**
 * @file
 * Many-tenant scaling sweep on the sliced-LLC datacenter presets:
 * pair count x discovery success x per-pair BER x aggregate capacity,
 * produced by the chan/tenant.hh harness.
 *
 *   $ ./example_tenant_scaling [maxPairs] [-j N]
 *
 * Every grid point stands up `pairs` concurrent sender/receiver
 * tenant pairs on one simulated socket. Each receiver discovers its
 * minimal eviction set by timing alone (chan::EvictionSetFinder — no
 * slice-hash knowledge), each sender finds congruent lines through
 * the cooperative conflict probe, and all pairs then share the socket
 * for a slotted binary WB channel. Columns:
 *
 *  - "disc"      — pairs whose discovery fully succeeded (receiver
 *    set self-verified minimal, sender found all d lines);
 *  - "collide"   — pairs sharing a (slice, slice-set) with another
 *    pair (ground truth); their BER column shows the cross-pair
 *    eviction interference, the clean column the quiet pairs;
 *  - "bits/slot" — aggregate BSC capacity sum(1 - H2(ber));
 *  - "kbps"      — that capacity at the effective slot period: the
 *    busiest core's per-slot work stretches the slot once tenants
 *    time-sharing a core saturate it ("util" > 1);
 *  - "probe win" — private-cache probes a global-scan coherence
 *    implementation would have issued for the run's events, divided
 *    by what the sharer directory actually probed.
 *
 * CI uploads this output as the tenant-scaling artifact; docs/TENANTS.md
 * records a reference run.
 *
 * `-j N` fans the grid points over a sim::SweepRunner pool; points
 * are assembled in fixed order, so output is byte-identical at any -j.
 */

#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "chan/tenant.hh"
#include "common/table.hh"
#include "sim/platform.hh"
#include "sim/sweep_runner.hh"

using namespace wb;

namespace
{

std::string
fixed(double v, int prec)
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(prec);
    os << v;
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned jobs = 1;
    unsigned maxPairs = 1024;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "-j") == 0 && i + 1 < argc)
            jobs = unsigned(std::stoul(argv[++i]));
        else
            maxPairs = std::max(1u, unsigned(std::stoul(argv[i])));
    }
    sim::SweepRunner pool(jobs);

    const char *platformName = "dc-sliced-64core";
    std::vector<unsigned> grid;
    for (unsigned p = 16; p <= maxPairs; p *= 4)
        grid.push_back(p);
    if (grid.empty())
        grid.push_back(maxPairs);

    const auto points = pool.map<chan::TenantSweepResult>(
        grid.size(), [&](std::size_t i) {
            chan::TenantSweepConfig cfg;
            cfg.usePlatform(platformName);
            cfg.pairs = grid[i];
            cfg.seed = 1;
            return chan::runTenantSweep(cfg);
        });

    Table t(std::string("Many-tenant WB-channel scaling on ") +
            platformName +
            ": concurrent pairs x discovery x BER x aggregate capacity");
    t.header({"pairs", "disc", "collide", "BER mean", "BER clean",
              "BER coll", "bits/slot", "kbps", "util", "probe win"});
    for (std::size_t i = 0; i < grid.size(); ++i) {
        const chan::TenantSweepResult &r = points[i];
        const double dirProbes = double(r.coherence.privateProbes);
        const double win = dirProbes > 0.0
                               ? double(r.scanProbeEquivalent) / dirProbes
                               : 0.0;
        t.row({std::to_string(grid[i]),
               std::to_string(r.discovered) + "/" +
                   std::to_string(grid[i]),
               std::to_string(r.collidingPairs),
               Table::pct(r.meanBer, 2), Table::pct(r.meanBerClean, 2),
               Table::pct(r.meanBerColliding, 2),
               fixed(r.aggregateBitsPerSlot, 1),
               fixed(r.aggregateKbps, 0), fixed(r.busiestCoreUtil, 2),
               fixed(win, 0) + "x"});
    }
    t.note("every receiver discovers its eviction set by timing alone "
           "(group-testing reduction, no slice-hash knowledge); every "
           "sender locates congruent lines via the cooperative "
           "conflict probe.");
    t.note("\"BER coll\" isolates pairs sharing a (slice, slice-set) "
           "with another pair; \"util\" > 1 means the busiest core's "
           "per-slot work overflows the nominal slot and paces the "
           "effective rate.");
    t.note("\"probe win\" = global-scan coherence probes / sharer-"
           "directory probes for the identical event stream.");
    t.print();
    return 0;
}
