/**
 * @file
 * Platform sweep: run one WB-channel frame on every platform
 * registered in the sim::platform registry and compare the channel
 * quality side by side.
 *
 *   $ ./example_platform_sweep [frames]
 *
 * The same protocol (rate, encoding, seed) runs unchanged on each
 * preset; only the machine differs. The paper's Xeon carries the
 * channel cleanly; the write-through ARM-style core has no dirty L1
 * lines at all (BER ~ 0.5, no calibration signal); the DAWG-defended
 * variant removes the cross-thread replacement signal; the
 * inclusive-LLC desktop part still leaks. The calibrated signal gap
 * (median latency difference between d = 0 and the top encoding
 * level) separates "physically removed" from "merely degraded".
 *
 * A second table runs the *cross-core* WB channel (sender on core 0,
 * receiver on core 1, shared LLC) on every multi-core preset: the
 * inclusive desktop part leaks through back-invalidation drains, the
 * non-inclusive Xeon does not. CI uploads this output as the
 * cross-core sweep artifact.
 *
 * `-j N` fans the per-platform runs over a sim::SweepRunner pool;
 * rows are emitted in registry order regardless of completion order,
 * so the output is byte-identical at any -j.
 */

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "chan/channel.hh"
#include "chan/cross_core.hh"
#include "common/table.hh"
#include "sim/platform.hh"
#include "sim/sweep_runner.hh"

using namespace wb;

namespace
{

/** Calibrated signal gap: top-level median minus d=0 median. */
double
signalGapOf(const chan::ChannelResult &res, unsigned top)
{
    if (top >= res.calibrationMedians.size())
        return 0.0;
    return res.calibrationMedians[top] - res.calibrationMedians[0];
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned frames = 1;
    unsigned jobs = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "-j") == 0 && i + 1 < argc)
            jobs = unsigned(std::stoul(argv[++i]));
        else
            frames = static_cast<unsigned>(std::stoul(argv[i]));
    }
    sim::SweepRunner pool(jobs);

    Table table("WB covert channel, one configuration on every "
                "registered platform");
    table.header({"platform", "description", "BER", "goodput kbps",
                  "signal gap", "dirty WBs"});

    const auto allRegistered = sim::allPlatforms();
    std::vector<const sim::Platform *> platforms;
    for (const sim::Platform *platform : allRegistered) {
        // Sliced-LLC presets have no single-core instantiation (the
        // Hierarchy is fatal on llcSlices > 1); they appear in the
        // cross-core table below and in the tenant-scaling sweep.
        if (platform->params.llcSlices <= 1)
            platforms.push_back(platform);
    }
    const auto rows = pool.map<std::vector<std::string>>(
        platforms.size(), [&](std::size_t i) {
            const sim::Platform *platform = platforms[i];
            chan::ChannelConfig cfg;
            cfg.usePlatform(platform->name);
            cfg.protocol.ts = cfg.protocol.tr = 5500;
            cfg.protocol.encoding = chan::Encoding::binary(
                std::min(4u, cfg.platform.l1.ways));
            cfg.protocol.frames = frames;
            cfg.calibration.measurements = 80;
            cfg.seed = 7;

            const chan::ChannelResult res = chan::runChannel(cfg);
            const double signalGap =
                signalGapOf(res, cfg.protocol.encoding.maxLevel());
            return std::vector<std::string>{
                platform->name,
                platform->description.substr(0, 40),
                Table::pct(res.ber, 2),
                Table::num(res.goodputKbps, 0),
                Table::num(signalGap, 1),
                std::to_string(res.receiverCounters.l1DirtyWritebacks +
                               res.senderCounters.l1DirtyWritebacks)};
        });
    for (auto row : rows)
        table.row(std::move(row));

    table.note("signal gap: calibrated median latency difference "
               "between d=0 and the top encoding level (cycles); ~0 "
               "means the platform removed the physical signal.");
    table.note("frames per platform: " + std::to_string(frames));
    table.print();

    // --- Cross-core sweep over the multi-core presets ---
    Table xc("Cross-core WB channel (sender core 0, receiver core 1, "
             "shared LLC)");
    xc.header({"platform", "cores", "BER", "goodput kbps", "signal gap",
               "LLC dirty evicts", "median lat d=0"});

    std::vector<const sim::Platform *> multiCore;
    for (const sim::Platform *platform : allRegistered)
        if (platform->cores >= 2)
            multiCore.push_back(platform);
    const auto xcRows = pool.map<std::vector<std::string>>(
        multiCore.size(), [&](std::size_t i) {
            const sim::Platform *platform = multiCore[i];
            chan::CrossCoreChannelConfig cfg;
            cfg.usePlatform(platform->name);
            cfg.protocol.frames = std::max(1u, frames);
            cfg.seed = 7;

            const chan::ChannelResult res =
                chan::runCrossCoreChannel(cfg);
            const double signalGap =
                signalGapOf(res, cfg.protocol.encoding.maxLevel());
            return std::vector<std::string>{
                platform->name,
                std::to_string(platform->cores),
                Table::pct(res.ber, 2),
                Table::num(res.goodputKbps, 0),
                Table::num(signalGap, 1),
                std::to_string(res.receiverCounters.llcDirtyEvictions),
                Table::num(res.calibrationMedians.empty()
                               ? 0.0
                               : res.calibrationMedians[0],
                           0)};
        });
    for (auto row : xcRows)
        xc.row(std::move(row));

    xc.note("LLC dirty evicts: receiver-charged LLC evictions that "
            "drained dirty data (the back-invalidation channel); 0 on "
            "the non-inclusive Xeon means the channel is closed.");
    xc.note("dc-sliced presets sit near coin-flip BER by design: the "
            "hand-built line pools here assume a monolithic LLC, and "
            "the slice hash scatters them — runtime eviction-set "
            "discovery (example_tenant_scaling) is what recovers the "
            "channel there.");
    xc.print();
    return 0;
}
