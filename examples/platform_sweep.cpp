/**
 * @file
 * Platform sweep: run one WB-channel frame on every platform
 * registered in the sim::platform registry and compare the channel
 * quality side by side.
 *
 *   $ ./example_platform_sweep [frames]
 *
 * The same protocol (rate, encoding, seed) runs unchanged on each
 * preset; only the machine differs. The paper's Xeon carries the
 * channel cleanly; the write-through ARM-style core has no dirty L1
 * lines at all (BER ~ 0.5, no calibration signal); the DAWG-defended
 * variant removes the cross-thread replacement signal; the
 * inclusive-LLC desktop part still leaks. The calibrated signal gap
 * (median latency difference between d = 0 and the top encoding
 * level) separates "physically removed" from "merely degraded".
 *
 * A second table runs the *cross-core* WB channel (sender on core 0,
 * receiver on core 1, shared LLC) on every multi-core preset: the
 * inclusive desktop part leaks through back-invalidation drains, the
 * non-inclusive Xeon does not. CI uploads this output as the
 * cross-core sweep artifact.
 */

#include <iostream>
#include <string>

#include "chan/channel.hh"
#include "chan/cross_core.hh"
#include "common/table.hh"
#include "sim/platform.hh"

using namespace wb;

int
main(int argc, char **argv)
{
    const unsigned frames =
        argc > 1 ? static_cast<unsigned>(std::stoul(argv[1])) : 1;

    Table table("WB covert channel, one configuration on every "
                "registered platform");
    table.header({"platform", "description", "BER", "goodput kbps",
                  "signal gap", "dirty WBs"});

    for (const sim::Platform *platform : sim::allPlatforms()) {
        chan::ChannelConfig cfg;
        cfg.usePlatform(platform->name);
        cfg.protocol.ts = cfg.protocol.tr = 5500;
        cfg.protocol.encoding = chan::Encoding::binary(
            std::min(4u, cfg.platform.l1.ways));
        cfg.protocol.frames = frames;
        cfg.calibration.measurements = 80;
        cfg.seed = 7;

        const chan::ChannelResult res = chan::runChannel(cfg);

        double signalGap = 0.0;
        const unsigned top = cfg.protocol.encoding.maxLevel();
        if (top < res.calibrationMedians.size())
            signalGap =
                res.calibrationMedians[top] - res.calibrationMedians[0];

        table.row({platform->name,
                   platform->description.substr(0, 40),
                   Table::pct(res.ber, 2),
                   Table::num(res.goodputKbps, 0),
                   Table::num(signalGap, 1),
                   std::to_string(res.receiverCounters.l1DirtyWritebacks +
                                  res.senderCounters.l1DirtyWritebacks)});
    }

    table.note("signal gap: calibrated median latency difference "
               "between d=0 and the top encoding level (cycles); ~0 "
               "means the platform removed the physical signal.");
    table.note("frames per platform: " + std::to_string(frames));
    table.print();

    // --- Cross-core sweep over the multi-core presets ---
    Table xc("Cross-core WB channel (sender core 0, receiver core 1, "
             "shared LLC)");
    xc.header({"platform", "cores", "BER", "goodput kbps", "signal gap",
               "LLC dirty evicts", "median lat d=0"});

    for (const sim::Platform *platform : sim::allPlatforms()) {
        if (platform->cores < 2)
            continue;
        chan::CrossCoreChannelConfig cfg;
        cfg.usePlatform(platform->name);
        cfg.protocol.frames = std::max(1u, frames);
        cfg.seed = 7;

        const chan::ChannelResult res = chan::runCrossCoreChannel(cfg);

        double signalGap = 0.0;
        const unsigned top = cfg.protocol.encoding.maxLevel();
        if (top < res.calibrationMedians.size())
            signalGap =
                res.calibrationMedians[top] - res.calibrationMedians[0];

        xc.row({platform->name, std::to_string(platform->cores),
                Table::pct(res.ber, 2), Table::num(res.goodputKbps, 0),
                Table::num(signalGap, 1),
                std::to_string(res.receiverCounters.llcDirtyEvictions),
                Table::num(res.calibrationMedians.empty()
                               ? 0.0
                               : res.calibrationMedians[0],
                           0)});
    }

    xc.note("LLC dirty evicts: receiver-charged LLC evictions that "
            "drained dirty data (the back-invalidation channel); 0 on "
            "the non-inclusive Xeon means the channel is closed.");
    xc.print();
    return 0;
}
