/**
 * @file
 * The detector-vs-stealth arms race: ROC sweeps of the online
 * perf-counter detector over the noisy multi-tenant machine, plus the
 * adaptive-stealth WB session that answers them.
 *
 *   $ ./example_detection_roc [seeds] [-j N]
 *
 * Six tables on the desktop-inclusive-4core preset:
 *
 *  1. Peak per-tenant score by scenario and co-runner mix — where the
 *     covert pairs sit relative to the benign band.
 *  2. Benign false-positive rate vs alarm threshold, per mix,
 *     Wilson-bounded: the cost side of every operating point.
 *  3. Detection rate vs threshold for each channel on the busy
 *     machine (4 mixed co-runners), Wilson-bounded.
 *  4. Detection rate vs threshold for the headline WB channel across
 *     mixes — how OS noise moves the ROC.
 *  5. The adaptive-stealth session: the sender starts greedy
 *     (binary(8) at Ts=2750), watches its own pair's detector
 *     footprint, and walks the rate ladder (d-shrink rungs first,
 *     then Ts doublings) until it sits under budget. Reports the
 *     goodput cost of stealth.
 *  6. Defense ROC shift: DAWG / PLcache / noise injection rerun under
 *     the same noise, scored by what they do to detection rate at the
 *     operating threshold *and* to BER — not by idle-machine channel
 *     closure.
 *
 * CI uploads this output as the detection-roc artifact;
 * docs/DETECTION.md records a reference run and the methodology.
 *
 * `-j N` fans the runs over a sim::SweepRunner pool (N = 0 picks the
 * hardware concurrency); every cell is an independent simulation and
 * results are assembled in fixed order, so output is byte-identical
 * at any -j.
 */

#include <algorithm>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.hh"
#include "perfmon/arms_race.hh"
#include "sim/sweep_runner.hh"

using namespace wb;
using namespace wb::perfmon;

namespace
{

unsigned gSeeds = 16;

const std::vector<unsigned> kMixes = {0, 2, 4};
const std::vector<double> kThresholds = {0.25, 0.5, 0.75, 1.0, 1.5, 2.5};
constexpr double kOperatingPoint = 1.0;

const std::vector<DetectionScenario> kScenarios = {
    DetectionScenario::IdlePair,      DetectionScenario::CompilerPair,
    DetectionScenario::StreamingPair, DetectionScenario::WbChannel,
    DetectionScenario::WbChannelD8,   DetectionScenario::LruChannel,
    DetectionScenario::CrossCoreWb,
};

ArmsRaceConfig
baseConfig(unsigned mix, std::uint64_t seed)
{
    ArmsRaceConfig cfg;
    cfg.coRunners = mix;
    cfg.seed = seed;
    return cfg;
}

/** "12.5% [8.2,18.1]" — a pooled rate with its Wilson interval. */
std::string
rateCell(unsigned k, unsigned n)
{
    if (n == 0)
        return "-";
    const WilsonInterval iv = wilsonInterval(k, n);
    return Table::pct(double(k) / double(n), 1) + " [" +
           Table::pct(iv.lo, 1) + "," + Table::pct(iv.hi, 1) + "]";
}

/** Pool one threshold over @p outs and return the RocPoint. */
RocPoint
pooled(const std::vector<ScenarioOutcome> &outs, double thr)
{
    return buildRoc(outs, {thr}).front();
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned jobs = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "-j") == 0 && i + 1 < argc)
            jobs = unsigned(std::stoul(argv[++i]));
        else
            gSeeds = std::max(1u, unsigned(std::stoul(argv[i])));
    }
    sim::SweepRunner pool(jobs);

    // --- Every (mix, scenario, seed) cell, in one fan-out ---
    const std::size_t perMix = kScenarios.size() * gSeeds;
    const auto outcomes = pool.map<ScenarioOutcome>(
        kMixes.size() * perMix, [&](std::size_t i) {
            const unsigned mix = kMixes[i / perMix];
            const std::size_t j = i % perMix;
            const DetectionScenario sc = kScenarios[j / gSeeds];
            const std::uint64_t seed = 1 + j % gSeeds;
            return runDetectionScenario(baseConfig(mix, seed), sc, seed);
        });
    const auto cellsOf = [&](unsigned mixIdx, DetectionScenario sc) {
        std::vector<ScenarioOutcome> group;
        for (std::size_t j = 0; j < perMix; ++j)
            if (kScenarios[j / gSeeds] == sc)
                group.push_back(outcomes[mixIdx * perMix + j]);
        return group;
    };
    const auto mixAll = [&](unsigned mixIdx) {
        std::vector<ScenarioOutcome> group(
            outcomes.begin() + long(mixIdx * perMix),
            outcomes.begin() + long((mixIdx + 1) * perMix));
        return group;
    };

    // --- Table 1: peak scores, covert pairs vs the benign band ---
    Table t1("Peak smoothed detector score per tenant (mean over " +
             std::to_string(gSeeds) + " seeds): covert pairs vs the "
             "benign band, by co-runner mix");
    t1.header({"scenario", "kind", "mix 0", "mix 2", "mix 4"});
    for (DetectionScenario sc : kScenarios) {
        std::vector<std::string> row{scenarioName(sc),
                                     scenarioIsAttack(sc) ? "attack"
                                                          : "benign"};
        for (unsigned m = 0; m < kMixes.size(); ++m) {
            double sum = 0.0;
            unsigned n = 0;
            for (const ScenarioOutcome &o : cellsOf(m, sc)) {
                const auto &v = scenarioIsAttack(sc) ? o.pairSmoothed
                                                     : o.benignSmoothed;
                double peak = 0.0;
                for (double s : v)
                    peak = std::max(peak, s);
                sum += peak;
                ++n;
            }
            row.push_back(n ? Table::num(sum / n, 2) : "-");
        }
        t1.row(std::move(row));
    }
    t1.note("attack rows: the covert pair's peak (max over its two "
            "tids); benign rows: the loudest benign tenant's peak.");
    t1.note("the same-core WB pair sits BELOW the mixed co-runner "
            "band (~0.97) and far below a compiler tenant (~2.3): "
            "paper Sec. VII's stealth claim, quantified.");
    t1.print();
    std::cout << "\n";

    // --- Table 2: benign FPR vs threshold, per mix ---
    Table t2("Benign false-positive rate vs alarm threshold "
             "(pooled benign (tid,window) samples, all scenarios, " +
             std::to_string(gSeeds) + " seeds, Wilson 99%)");
    t2.header({"threshold", "mix 0", "mix 2", "mix 4"});
    for (double thr : kThresholds) {
        std::vector<std::string> row{Table::num(thr, 2)};
        for (unsigned m = 0; m < kMixes.size(); ++m) {
            const RocPoint pt = pooled(mixAll(m), thr);
            row.push_back(rateCell(pt.benignAlarms, pt.benignSamples));
        }
        t2.row(std::move(row));
    }
    t2.note("benign samples include the co-runners of attack runs: "
            "tenants sharing a machine with a live channel are benign "
            "too.");
    t2.print();
    std::cout << "\n";

    // --- Table 3: detection vs threshold per channel, busy machine ---
    const unsigned busy = unsigned(kMixes.size()) - 1;
    Table t3("Detection rate vs threshold on the busy machine (4 mixed "
             "co-runners; attack-pair windows, Wilson 99%)");
    t3.header({"threshold", "WB d=1", "WB d=8", "LRU", "cross-core"});
    for (double thr : kThresholds) {
        std::vector<std::string> row{Table::num(thr, 2)};
        for (DetectionScenario sc :
             {DetectionScenario::WbChannel, DetectionScenario::WbChannelD8,
              DetectionScenario::LruChannel,
              DetectionScenario::CrossCoreWb}) {
            const RocPoint pt = pooled(cellsOf(busy, sc), thr);
            row.push_back(rateCell(pt.attackAlarms, pt.attackWindows));
        }
        t3.row(std::move(row));
    }
    t3.note("by coherence/miss features the LRU pair is QUIETER than "
            "the WB pair: its Table-VI loudness is raw access "
            "footprint, which a window detector cannot use without "
            "drowning in benign streaming false positives.");
    t3.print();
    std::cout << "\n";

    // --- Table 4: the WB channel's ROC across mixes ---
    Table t4("WB channel (d=1) detection rate vs threshold across "
             "co-runner mixes (Wilson 99%)");
    t4.header({"threshold", "mix 0", "mix 2", "mix 4"});
    for (double thr : kThresholds) {
        std::vector<std::string> row{Table::num(thr, 2)};
        for (unsigned m = 0; m < kMixes.size(); ++m) {
            const RocPoint pt =
                pooled(cellsOf(m, DetectionScenario::WbChannel), thr);
            row.push_back(rateCell(pt.attackAlarms, pt.attackWindows));
        }
        t4.row(std::move(row));
    }
    t4.print();
    std::cout << "\n";

    // --- Table 5: the adaptive-stealth session ---
    const auto sessions = pool.map<StealthOutcome>(gSeeds, [&](std::size_t s) {
        ArmsRaceConfig cfg = baseConfig(kMixes[busy], 1 + s);
        StealthConfig st;
        return runStealthSession(cfg, st);
    });
    Table t5("Adaptive-stealth WB session: the sender throttles down "
             "the rate ladder until the pair sits under budget "
             "(budget 0.8 x threshold " + Table::num(kOperatingPoint, 1) +
             ", " + std::to_string(gSeeds) + " sessions)");
    t5.header({"round", "rung", "Ts", "d", "mean BER", "mean peak",
               "over budget"});
    const std::size_t rounds = sessions.front().rounds.size();
    for (std::size_t r = 0; r < rounds; ++r) {
        double sumBer = 0.0, sumPeak = 0.0;
        unsigned over = 0;
        const StealthRound &ref = sessions.front().rounds[r];
        for (const StealthOutcome &s : sessions) {
            sumBer += s.rounds[r].ber;
            sumPeak += s.rounds[r].pairPeak;
            over += s.rounds[r].overBudget ? 1 : 0;
        }
        t5.row({std::to_string(r), std::to_string(ref.rung),
                std::to_string(ref.ts), std::to_string(ref.d),
                Table::pct(sumBer / double(gSeeds), 1),
                Table::num(sumPeak / double(gSeeds), 2),
                std::to_string(over) + "/" + std::to_string(gSeeds)});
    }
    std::uint64_t bitsTotal = 0, bitsCorrect = 0;
    double settledPeak = 0.0, goodputSum = 0.0;
    std::uint64_t greedyBits = 0, greedyCorrect = 0;
    Cycles greedyCycles = 0;
    for (const StealthOutcome &s : sessions) {
        bitsTotal += s.bitsTotal;
        bitsCorrect += s.bitsCorrect;
        settledPeak = std::max(settledPeak, s.settledPeak);
        goodputSum += s.goodputKbps;
        greedyBits += s.rounds.front().payloadBits;
        greedyCorrect += s.rounds.front().correctBits;
        greedyCycles += s.rounds.front().simulatedCycles;
    }
    const WilsonInterval bitIv =
        wilsonInterval(unsigned(bitsCorrect), unsigned(bitsTotal));
    t5.note("settled peak over all sessions: " +
            Table::num(settledPeak, 2) + " < budget 0.8 < operating "
            "threshold " + Table::num(kOperatingPoint, 1) + ".");
    t5.note("pooled correct payload bits: " + std::to_string(bitsCorrect) +
            "/" + std::to_string(bitsTotal) + ", Wilson 99% [" +
            Table::pct(bitIv.lo, 1) + "," + Table::pct(bitIv.hi, 1) +
            "] -- statistically nonzero goodput while under budget.");
    t5.note("goodput cost of stealth: settled session mean " +
            Table::num(goodputSum / double(gSeeds), 1) +
            " kbps vs greedy rung-0 rate " +
            Table::num(double(greedyCorrect) * 2.2e6 /
                       double(std::max<Cycles>(1, greedyCycles)), 1) +
            " kbps -- but the greedy rung is over budget in round 0 "
            "of every session.");
    t5.print();
    std::cout << "\n";

    // --- Table 6: defense ROC shift under noise ---
    const std::vector<defense::DefenseSpec> specs = {
        {defense::DefenseKind::None, 0},
        {defense::DefenseKind::Dawg, 0},
        {defense::DefenseKind::PlCache, 0},
        {defense::DefenseKind::PrefetchGuard, 30},
    };
    const auto defended = pool.map<ScenarioOutcome>(
        specs.size() * gSeeds, [&](std::size_t i) {
            ArmsRaceConfig cfg = baseConfig(kMixes[busy], 1 + i % gSeeds);
            cfg.ts = 2750; // the attacker's greedy (loud) rate
            cfg.defense = specs[i / gSeeds];
            return runDetectionScenario(
                cfg, DetectionScenario::WbChannelD8, cfg.seed);
        });
    Table t6("Defense ROC shift under scheduler noise: greedy WB "
             "channel (d=8, Ts=2750) per defense, scored at the "
             "operating threshold -- not by idle-machine closure");
    t6.header({"defense", "mean BER", "detect @" +
               Table::num(kOperatingPoint, 1), "mean pair peak"});
    for (std::size_t d = 0; d < specs.size(); ++d) {
        std::vector<ScenarioOutcome> group(
            defended.begin() + long(d * gSeeds),
            defended.begin() + long((d + 1) * gSeeds));
        double sumBer = 0.0, sumPeak = 0.0;
        for (const ScenarioOutcome &o : group) {
            sumBer += o.ber;
            double peak = 0.0;
            for (double s : o.pairSmoothed)
                peak = std::max(peak, s);
            sumPeak += peak;
        }
        const RocPoint pt = pooled(group, kOperatingPoint);
        t6.row({defense::defenseName(specs[d]),
                Table::pct(sumBer / double(gSeeds), 1),
                rateCell(pt.attackAlarms, pt.attackWindows),
                Table::num(sumPeak / double(gSeeds), 2)});
    }
    t6.note("a defense that closes the channel (BER -> ~50%) can still "
            "leave the pair loud (the receiver keeps sweeping); one "
            "that merely adds noise can lower detection while the "
            "channel keeps working -- the ROC shift is the honest "
            "score.");
    t6.note("seeds per row: " + std::to_string(gSeeds));
    t6.print();
    return 0;
}
