/**
 * @file
 * Observer-capability sweep: the extended Table-I axis — what each
 * channel family still delivers when the attacker's measurement
 * apparatus is degraded (sim/observer.hh, chan/degraded.hh).
 *
 *   $ ./example_observer_sweep [seeds]
 *
 * Four tables:
 *
 *  1. WB channel BER, observer class x platform preset. The coarse-µs
 *     observer runs the repetition-amplified plan; eviction-only runs
 *     over timing-discovered replacement sets.
 *
 *  2. WB channel *effective* goodput for the same grid: kbps after
 *     dividing by the repetition factor R (the goodput-honesty rule —
 *     amplification spends R slots per symbol, and the table says so).
 *
 *  3. Channel family x observer class on the Xeon preset: the
 *     flush-family baselines die without the clflush primitive
 *     ("denied"), and none of them has an amplification plan under
 *     the coarse timer — only the WB channel crosses that column.
 *
 *  4. Observer class x defense, and observer class x co-resident
 *     noise, on the Xeon preset: a degraded observer composes with
 *     the defense grid (FuzzyTime's TSC coarsening and the observer
 *     granule floor combine by max at the same choke point).
 *
 * CI uploads this output as the observer-sweep artifact;
 * docs/OBSERVERS.md and docs/README.md's taxonomy table record a
 * reference run.
 *
 * `-j N` fans the sweep cells over a sim::SweepRunner thread pool
 * (N = 0 picks the hardware concurrency). Every cell is an
 * independent shared-nothing simulation and results are assembled in
 * fixed grid order, so the output is byte-identical at any -j.
 */

#include <algorithm>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "baselines/flush_channels.hh"
#include "chan/channel.hh"
#include "chan/degraded.hh"
#include "common/table.hh"
#include "defense/defense.hh"
#include "sim/observer.hh"
#include "sim/platform.hh"
#include "sim/sweep_runner.hh"

using namespace wb;

namespace
{

unsigned gSeeds = 3;

/** One named observer capability class. */
struct ObsSpec
{
    const char *name;
    sim::ObserverModel model;
};

std::vector<ObsSpec>
observerGrid()
{
    return {
        {"cycle-accurate", sim::ObserverModel{}},
        {"coarse-us", sim::ObserverModel::sandboxTimer()},
        {"flush-latency", sim::ObserverModel::flushLatency()},
        {"eviction-only", sim::ObserverModel::evictionOnly()},
    };
}

/** Aggregated WB-channel cell over the seed pool. */
struct WbCell
{
    double ber = 1.0;
    double goodputKbps = 0.0;
    unsigned repetition = 1;
    bool discoveryVerified = true;
};

/** Small frames keep the amplified cells affordable. */
chan::ChannelConfig
baseConfig(const std::string &platformName)
{
    chan::ChannelConfig cfg;
    cfg.usePlatform(platformName);
    cfg.protocol.encoding =
        chan::Encoding::binary(std::min(8u, cfg.platform.l1.ways));
    cfg.protocol.frameBits = 32;
    cfg.protocol.frames = 2;
    return cfg;
}

WbCell
wbCell(chan::ChannelConfig cfg, const sim::ObserverModel &obs)
{
    cfg.noise.observer = obs;
    WbCell cell;
    cell.ber = 0.0;
    for (unsigned s = 0; s < gSeeds; ++s) {
        cfg.seed = 1 + s;
        const chan::ChannelResult res = chan::runChannel(cfg);
        cell.ber += res.ber / gSeeds;
        cell.goodputKbps += res.goodputKbps / gSeeds;
        cell.repetition = std::max(cell.repetition, res.repetition);
        cell.discoveryVerified =
            cell.discoveryVerified && res.evictionDiscoveryVerified;
    }
    return cell;
}

/** Flush-family baseline cell: mean BER, or denial. */
std::string
flushCell(baselines::FlushKind kind, const sim::ObserverModel &obs)
{
    baselines::BaselineConfig cfg;
    cfg.noise.observer = obs;
    if (!baselines::flushChannelAvailable(cfg))
        return "denied";
    cfg.frameBits = 32;
    cfg.frames = 4;
    double ber = 0.0;
    for (unsigned s = 0; s < gSeeds; ++s) {
        cfg.seed = 1 + s;
        ber += baselines::runFlushChannel(cfg, kind).ber / gSeeds;
    }
    return Table::pct(ber, 2);
}

std::string
goodputLabel(const WbCell &cell)
{
    std::string s = Table::num(cell.goodputKbps, 3) + " kbps";
    if (cell.repetition > 1)
        s += " (R=" + std::to_string(cell.repetition) + ")";
    if (!cell.discoveryVerified)
        s += " [fallback sets]";
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned jobs = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "-j") == 0 && i + 1 < argc)
            jobs = unsigned(std::stoul(argv[++i]));
        else
            gSeeds = std::max(1u, unsigned(std::stoul(argv[i])));
    }
    sim::SweepRunner pool(jobs);

    const std::vector<ObsSpec> observers = observerGrid();
    const std::vector<std::string> platforms = {
        "xeonE5-2650", "desktop-inclusive", "cortexA53-wt",
        "xeonE5-2650-dawg"};

    // --- Tables 1 + 2: WB channel, observer x platform ---
    const auto grid = pool.map<WbCell>(
        observers.size() * platforms.size(), [&](std::size_t i) {
            return wbCell(baseConfig(platforms[i % platforms.size()]),
                          observers[i / platforms.size()].model);
        });

    Table t1("WB channel BER by observer capability class "
             "(degraded apparatus; chan/degraded.hh plans)");
    {
        std::vector<std::string> head{"observer"};
        head.insert(head.end(), platforms.begin(), platforms.end());
        t1.header(head);
    }
    for (std::size_t o = 0; o < observers.size(); ++o) {
        std::vector<std::string> row{observers[o].name};
        for (std::size_t p = 0; p < platforms.size(); ++p)
            row.push_back(Table::pct(grid[o * platforms.size() + p].ber, 2));
        t1.row(std::move(row));
    }
    t1.note("coarse-us = " + std::to_string(sim::kSandboxTimerGranule) +
            "-cycle (~1 us) timer floor, repetition-amplified; "
            "flush-latency = timed clflush reads the pending "
            "write-back drain; eviction-only = discovered sets, no "
            "clflush anywhere.");
    t1.note("cortexA53-wt (write-through) and xeonE5-2650-dawg "
            "(partitioned) stay closed for every observer — a weaker "
            "observer never reopens a closed channel.");
    t1.note("seeds averaged per cell: " + std::to_string(gSeeds));
    t1.print();
    std::cout << "\n";

    Table t2("WB channel effective goodput for the same grid "
             "(kbps after dividing by the repetition factor R)");
    {
        std::vector<std::string> head{"observer"};
        head.insert(head.end(), platforms.begin(), platforms.end());
        t2.header(head);
    }
    for (std::size_t o = 0; o < observers.size(); ++o) {
        std::vector<std::string> row{observers[o].name};
        for (std::size_t p = 0; p < platforms.size(); ++p)
            row.push_back(goodputLabel(grid[o * platforms.size() + p]));
        t2.row(std::move(row));
    }
    t2.note("the coarse-timer rows report the *effective* bit rate: "
            "raw slot rate / R, times (1 - BER). R is auto-scaled per "
            "cell from a planning calibration; closed channels get "
            "the bounded R=" + std::to_string(chan::kClosedChannelRepetition) +
            " budget instead of the full ceiling.");
    t2.print();
    std::cout << "\n";

    // --- Table 3: channel family x observer on the Xeon preset ---
    const std::vector<std::pair<std::string, baselines::FlushKind>> family =
        {{"Flush+Reload", baselines::FlushKind::FlushReload},
         {"Flush+Flush", baselines::FlushKind::FlushFlush},
         {"CoherenceState", baselines::FlushKind::CoherenceState}};
    const auto familyCells = pool.map<std::string>(
        family.size() * observers.size(), [&](std::size_t i) {
            return flushCell(family[i / observers.size()].second,
                             observers[i % observers.size()].model);
        });

    Table t3("Channel families under degraded observers (Xeon preset): "
             "BER, or denial of the required primitive");
    {
        std::vector<std::string> head{"channel"};
        for (const ObsSpec &o : observers)
            head.push_back(o.name);
        t3.header(head);
    }
    {
        std::vector<std::string> wbRow{"WB (this paper)"};
        const std::size_t xeonCol = 0; // platforms[0]
        for (std::size_t o = 0; o < observers.size(); ++o)
            wbRow.push_back(
                Table::pct(grid[o * platforms.size() + xeonCol].ber, 2));
        t3.row(std::move(wbRow));
    }
    for (std::size_t f = 0; f < family.size(); ++f) {
        std::vector<std::string> row{family[f].first};
        for (std::size_t o = 0; o < observers.size(); ++o)
            row.push_back(familyCells[f * observers.size() + o]);
        t3.row(std::move(row));
    }
    t3.note("the flush family requires clflush: the eviction-only "
            "column is denied outright (flushChannelAvailable). Under "
            "the coarse timer the baselines have no repetition plan, "
            "so their BER collapses to the coin-flip regime — only "
            "the WB channel amplifies through that column.");
    t3.print();
    std::cout << "\n";

    // --- Table 4a: observer x defense on the Xeon preset ---
    const std::vector<defense::DefenseSpec> defenses = {
        {defense::DefenseKind::None, 0},
        {defense::DefenseKind::WriteThrough, 0},
        {defense::DefenseKind::FuzzyTime, 64},
        {defense::DefenseKind::PrefetchGuard, 10}};
    const auto defenseCells = pool.map<WbCell>(
        observers.size() * defenses.size(), [&](std::size_t i) {
            const chan::ChannelConfig defended = defense::applyDefense(
                baseConfig("xeonE5-2650"),
                defenses[i % defenses.size()]);
            return wbCell(defended, observers[i / defenses.size()].model);
        });

    Table t4("WB channel BER, observer x defense (Xeon preset)");
    {
        std::vector<std::string> head{"observer"};
        for (const defense::DefenseSpec &d : defenses)
            head.push_back(defense::defenseName(d));
        t4.header(head);
    }
    for (std::size_t o = 0; o < observers.size(); ++o) {
        std::vector<std::string> row{observers[o].name};
        for (std::size_t d = 0; d < defenses.size(); ++d)
            row.push_back(
                Table::pct(defenseCells[o * defenses.size() + d].ber, 2));
        t4.row(std::move(row));
    }
    t4.note("FuzzyTime's TSC granularity and the observer's timer "
            "floor combine by max at the same quantization choke "
            "point (NoiseModel::timerGranule) — the coarse-us row is "
            "already past FuzzyTime-64, so that defense adds nothing "
            "against it.");
    t4.print();
    std::cout << "\n";

    // --- Table 4b: observer x co-resident noise on the Xeon preset ---
    const std::vector<unsigned> noiseCounts = {0, 2, 4};
    const auto noiseCells = pool.map<WbCell>(
        observers.size() * noiseCounts.size(), [&](std::size_t i) {
            chan::ChannelConfig cfg = baseConfig("xeonE5-2650");
            cfg.noiseProcesses = noiseCounts[i % noiseCounts.size()];
            return wbCell(cfg, observers[i / noiseCounts.size()].model);
        });

    Table t5("WB channel BER, observer x co-resident noise processes "
             "(Xeon preset)");
    t5.header({"observer", "0", "2", "4"});
    for (std::size_t o = 0; o < observers.size(); ++o) {
        std::vector<std::string> row{observers[o].name};
        for (std::size_t n = 0; n < noiseCounts.size(); ++n)
            row.push_back(Table::pct(
                noiseCells[o * noiseCounts.size() + n].ber, 2));
        t5.row(std::move(row));
    }
    t5.note("noise processes burst-dirty the target set "
            "(chan/noise_process.hh); the repetition decoder averages "
            "over their bursts like any other dispersion source, so "
            "the coarse-timer row degrades gracefully rather than "
            "collapsing.");
    t5.print();
    return 0;
}
