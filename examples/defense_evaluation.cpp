/**
 * @file
 * Defense shoot-out (paper Sec. VIII): rerun the covert channel under
 * each mitigation and report what actually closes it.
 *
 *   $ ./defense_evaluation
 */

#include <iostream>

#include "common/table.hh"
#include "defense/defense.hh"

using namespace wb;
using namespace wb::defense;

int
main()
{
    chan::ChannelConfig base;
    base.protocol.ts = base.protocol.tr = 5500;
    base.protocol.encoding = chan::Encoding::binary(8);
    base.protocol.frames = 15;
    base.seed = 3;

    banner(std::cout, "WB channel vs. the Sec. VIII defense suite");
    auto evals = evaluateDefenses(base, standardDefenseSpecs());

    Table t("d=8 binary at 400 kbps");
    t.header({"defense", "BER", "signal gap", "verdict"});
    for (const auto &ev : evals) {
        const bool closed = ev.signalGap < 5.0 || ev.result.ber > 0.25;
        t.row({defenseName(ev.spec), Table::pct(ev.result.ber, 1),
               Table::num(ev.signalGap, 1) + " cyc",
               ev.spec.kind == DefenseKind::None
                   ? "(baseline)"
                   : (closed ? "MITIGATES" : "channel survives")});
    }
    t.note("Matches the paper: write-through / PLcache / DAWG / "
           "random-fill / full partitions close the channel; prefetch "
           "noise, weak partitions, fine fuzzy time and random "
           "replacement do not.");
    t.print(std::cout);
    return 0;
}
