/**
 * @file
 * Side-channel demo (paper Sec. IX): recover a victim's secret key one
 * bit at a time by timing replacements of the cache set its secret-
 * dependent store lands in. No shared memory; the attacker only ever
 * touches its own lines.
 *
 *   $ ./side_channel_attack [key_bits] [votes]
 */

#include <cstdlib>
#include <iostream>

#include "common/table.hh"
#include "sidechan/attack.hh"

using namespace wb;
using namespace wb::sidechan;

int
main(int argc, char **argv)
{
    const unsigned keyBits =
        argc > 1 ? unsigned(std::atoi(argv[1])) : 128u;
    const unsigned votes = argc > 2 ? unsigned(std::atoi(argv[2])) : 5u;

    banner(std::cout, "WB side channel: single-trial accuracies");
    Table t("300 random secrets per scenario");
    t.header({"scenario", "accuracy"});
    for (auto [s, name] :
         {std::pair<Scenario, const char *>{Scenario::DirtyProbe,
                                            "1: dirty-probe (store gadget)"},
          {Scenario::DirtyPrime, "2: dirty-prime (read-only secret)"},
          {Scenario::VictimTiming, "3: victim timing (2 serial lines)"}}) {
        AttackConfig cfg;
        cfg.scenario = s;
        cfg.serialLines = s == Scenario::VictimTiming ? 2 : 1;
        cfg.trials = 300;
        cfg.seed = 7;
        t.row({name, Table::pct(runAttack(cfg).accuracy, 1)});
    }
    t.print(std::cout);

    std::cout << "\nRecovering a " << keyBits << "-bit key ("
              << votes << " probes per bit, majority vote)...\n";
    const unsigned recovered = recoverKeyDemo(keyBits, votes, 99);
    std::cout << "  recovered " << recovered << "/" << keyBits
              << " bits ("
              << Table::pct(double(recovered) / keyBits, 1) << ")\n";
    return recovered == keyBits ? 0 : 1;
}
