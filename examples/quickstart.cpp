/**
 * @file
 * Quickstart: transmit a string across the WB covert channel on the
 * simulated hyper-threaded Xeon E5-2650 and decode it.
 *
 *   $ ./quickstart
 *
 * The sender and receiver are two simulated processes with disjoint
 * address spaces sharing one physical core's L1D. The sender encodes
 * each bit by dirtying (or not) a cache line of the agreed target set;
 * the receiver times pointer-chased replacements of that set.
 */

#include <iostream>

#include "chan/channel.hh"
#include "common/table.hh"

using namespace wb;

int
main()
{
    chan::ChannelConfig cfg;
    cfg.protocol.ts = cfg.protocol.tr = 5500; // 400 kbps
    cfg.protocol.encoding = chan::Encoding::binary(4);
    cfg.seed = 1;

    const std::string secret = "dirty bits talk";
    chan::ChannelResult res;
    const std::string received = chan::transmitString(cfg, secret, &res);

    std::cout << "WB covert channel quickstart\n"
              << "  platform: simulated Xeon E5-2650, two hyper-threads"
                 ", no shared memory\n"
              << "  rate:     " << Table::num(res.rateKbps, 0)
              << " kbps (Ts = Tr = " << cfg.protocol.ts << " cycles)\n"
              << "  sent:     \"" << secret << "\"\n"
              << "  received: \"" << received << "\"\n"
              << "  BER:      " << Table::pct(res.ber, 2) << "\n\n";

    std::cout << "First receiver observations (cycles to replace the "
                 "target set):\n  ";
    for (std::size_t i = 0; i < 24 && i < res.latencies.size(); ++i)
        std::cout << Table::num(res.latencies[i], 0) << " ";
    std::cout << "\n  (low ~= clean set = bit 0; high = dirty line "
                 "written back = bit 1)\n";
    return received == secret ? 0 : 1;
}
