/**
 * @file
 * Full covert-channel tour: binary encodings d = 1..8 and the 2-bit
 * multi-level encoding, swept across transmission rates, with error
 * breakdowns and goodput — a compact interactive version of the
 * paper's Sec. V evaluation.
 *
 *   $ ./covert_channel_demo [frames]
 */

#include <cstdlib>
#include <iostream>

#include "chan/channel.hh"
#include "common/table.hh"

using namespace wb;
using namespace wb::chan;

int
main(int argc, char **argv)
{
    const unsigned frames =
        argc > 1 ? unsigned(std::atoi(argv[1])) : 30u;

    banner(std::cout, "Binary encodings at 400 kbps");
    Table t1("d = dirty lines per 1-bit (frames: " +
             std::to_string(frames) + ")");
    t1.header({"d", "BER", "flips", "inserts", "losses", "goodput"});
    for (unsigned d = 1; d <= 8; ++d) {
        ChannelConfig cfg;
        cfg.protocol.ts = cfg.protocol.tr = 5500;
        cfg.protocol.encoding = Encoding::binary(d);
        cfg.protocol.frames = frames;
        cfg.seed = 42;
        auto res = runChannel(cfg);
        t1.row({std::to_string(d), Table::pct(res.ber, 2),
                std::to_string(res.breakdown.substitutions),
                std::to_string(res.breakdown.insertions),
                std::to_string(res.breakdown.deletions),
                Table::num(res.goodputKbps, 0) + " kbps"});
    }
    t1.print(std::cout);

    banner(std::cout, "Pushing the rate (d = 8 vs d = 1)");
    Table t2("");
    t2.header({"rate", "BER d=1", "BER d=8"});
    for (Cycles ts : {5500u, 2200u, 1600u, 1000u, 800u}) {
        std::vector<std::string> row;
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%4.0f kbps", 2.2e6 / ts);
        row.emplace_back(buf);
        for (unsigned d : {1u, 8u}) {
            ChannelConfig cfg;
            cfg.protocol.ts = cfg.protocol.tr = ts;
            cfg.protocol.encoding = Encoding::binary(d);
            cfg.protocol.frames = frames;
            cfg.seed = 42;
            row.push_back(Table::pct(runChannel(cfg).ber, 2));
        }
        t2.row(row);
    }
    t2.note("More dirty lines = wider latency gap = headroom at high "
            "rates (paper Fig. 6).");
    t2.print(std::cout);

    banner(std::cout, "Multi-bit encoding {0,3,5,8} (2 bits/symbol)");
    Table t3("");
    t3.header({"rate", "BER", "goodput"});
    for (Cycles ts : {4000u, 2000u, 1000u}) {
        ChannelConfig cfg;
        cfg.protocol.ts = cfg.protocol.tr = ts;
        cfg.protocol.encoding = Encoding::paperTwoBit();
        cfg.protocol.frameBits = 256;
        cfg.protocol.frames = frames;
        cfg.seed = 42;
        auto res = runChannel(cfg);
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%4.0f kbps", 2 * 2.2e6 / ts);
        t3.row({buf, Table::pct(res.ber, 2),
                Table::num(res.goodputKbps, 0) + " kbps"});
    }
    t3.note("The paper's headline: 4400 kbps with 2-bit symbols "
            "(Ts = 1000) at low error - 3x the best binary rate.");
    t3.print(std::cout);
    return 0;
}
