/**
 * @file
 * OS-noise sweep: the Table-VII-style robustness tables, produced by
 * the sim::Scheduler subsystem on every platform registry preset.
 *
 *   $ ./example_noise_sweep [seeds]
 *
 * Three tables:
 *
 *  1. Single-core WB channel, BER vs co-runner count. Co-runners
 *     time-share the channel's physical core in fixed slices with
 *     context-switch pollution. An idle mix (spinners) leaves the
 *     channel at 0% BER — the paper's claim that benign co-residency
 *     does not break the WB channel — while the mixed workloads
 *     (streaming / pointer-chase / random-store) degrade it
 *     monotonically as more of them are added.
 *
 *  2. Cross-core side-channel attack, accuracy vs migration period:
 *     every `period` trials the attacker is forcibly migrated to the
 *     next victim-free core, leaving its warmed private caches
 *     behind; the first probes after each hop mismeasure, so accuracy
 *     falls as the period shrinks. Single-core presets run their
 *     2-core cross-core instantiation, like usePlatform() does.
 *
 *  3. Cross-core WB channel, BER vs co-runner count on the multi-core
 *     presets (co-runners fill the free cores first, then share the
 *     parties' cores under timeslicing).
 *
 * CI uploads this output as the noise-sweep artifact; docs/PERF.md
 * "Noise robustness" records a reference run.
 */

#include <iostream>
#include <string>
#include <vector>

#include "chan/channel.hh"
#include "chan/cross_core.hh"
#include "common/table.hh"
#include "sidechan/attack.hh"
#include "sim/platform.hh"
#include "sim/scheduler.hh"

using namespace wb;

namespace
{

unsigned gSeeds = 3;

/** Average single-core channel BER over the seed pool. */
double
meanChannelBer(const std::string &platformName,
               const std::vector<sim::CoRunnerKind> &mix)
{
    double sum = 0.0;
    for (unsigned s = 0; s < gSeeds; ++s) {
        chan::ChannelConfig cfg;
        cfg.usePlatform(platformName);
        cfg.noise = sim::NoiseModel::quiet();
        cfg.platform.lat.noiseSigma = 0.0;
        cfg.protocol.ts = cfg.protocol.tr = 5500;
        cfg.protocol.encoding =
            chan::Encoding::binary(std::min(4u, cfg.platform.l1.ways));
        cfg.protocol.frames = 3;
        cfg.calibration.measurements = 60;
        cfg.seed = 1 + s;
        cfg.scheduler = sim::platform(platformName).noisePreset;
        cfg.scheduler.coRunners = mix;
        sum += chan::runChannel(cfg).ber;
    }
    return sum / gSeeds;
}

/** Average cross-core attack accuracy over the seed pool. */
double
meanAttackAccuracy(const std::string &platformName, Cycles migrationPeriod)
{
    double sum = 0.0;
    for (unsigned s = 0; s < gSeeds; ++s) {
        sidechan::AttackConfig cfg;
        cfg.usePlatform(platformName);
        cfg.crossCore = true;
        cfg.scenario = sidechan::Scenario::DirtyProbe;
        cfg.trials = 96;
        cfg.calibration = 80;
        cfg.seed = 1 + s;
        cfg.scheduler = sim::platform(platformName).noisePreset;
        cfg.scheduler.migrationPeriod = migrationPeriod;
        sum += sidechan::runAttack(cfg).accuracy;
    }
    return sum / gSeeds;
}

/** Average cross-core channel BER over the seed pool. */
double
meanCrossCoreBer(const std::string &platformName,
                 const std::vector<sim::CoRunnerKind> &mix)
{
    double sum = 0.0;
    for (unsigned s = 0; s < gSeeds; ++s) {
        chan::CrossCoreChannelConfig cfg;
        cfg.usePlatform(platformName);
        cfg.protocol.frames = 2;
        cfg.seed = 1 + s;
        cfg.scheduler = sim::platform(platformName).noisePreset;
        cfg.scheduler.coRunners = mix;
        sum += chan::runCrossCoreChannel(cfg).ber;
    }
    return sum / gSeeds;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1)
        gSeeds = std::max(1u, unsigned(std::stoul(argv[1])));

    using sim::CoRunnerKind;
    using sim::SchedulerConfig;

    // --- Table 1: single-core channel, BER vs co-runner count ---
    Table t1("Single-core WB channel under OS noise: BER vs co-runners "
             "(timesliced core sharing + context-switch pollution)");
    t1.header({"platform", "none", "2 idle", "1 mixed", "2 mixed",
               "4 mixed"});
    for (const sim::Platform *p : sim::allPlatforms()) {
        if (p->cores > 1)
            continue; // the multi-core presets repeat their base machine
        t1.row({p->name,
                Table::pct(meanChannelBer(p->name, {}), 2),
                Table::pct(meanChannelBer(
                               p->name, {CoRunnerKind::Idle,
                                         CoRunnerKind::Idle}),
                           2),
                Table::pct(meanChannelBer(p->name,
                                          SchedulerConfig::mixOf(1)),
                           2),
                Table::pct(meanChannelBer(p->name,
                                          SchedulerConfig::mixOf(2)),
                           2),
                Table::pct(meanChannelBer(p->name,
                                          SchedulerConfig::mixOf(4)),
                           2)});
    }
    t1.note("mixed co-runners cycle streaming -> pointer-chase -> "
            "random-store -> idle (SchedulerConfig::mixOf).");
    t1.note("cortexA53-wt (write-through) and xeonE5-2650-dawg "
            "(partitioned) have no WB channel in any column.");
    t1.note("seeds averaged per cell: " + std::to_string(gSeeds));
    t1.print();
    std::cout << "\n";

    // --- Table 2: cross-core attack, accuracy vs migration period ---
    Table t2("Cross-core store-gadget attack: accuracy vs attacker "
             "migration period (trials between forced core hops)");
    t2.header({"platform", "cores", "pinned", "every 48", "every 12",
               "every 3"});
    for (const sim::Platform *p : sim::allPlatforms()) {
        if (!sim::multiCoreCapable(p->params))
            continue; // no multi-core machine to migrate across
        const unsigned cores = std::max(2u, p->cores);
        t2.row({p->name, std::to_string(cores),
                Table::pct(meanAttackAccuracy(p->name, 0), 1),
                Table::pct(meanAttackAccuracy(p->name, 48), 1),
                Table::pct(meanAttackAccuracy(p->name, 12), 1),
                Table::pct(meanAttackAccuracy(p->name, 3), 1)});
    }
    t2.note("single-core presets run their 2-core cross-core "
            "instantiation; non-inclusive LLCs have no cross-core "
            "channel, so those rows sit at coin-flip accuracy.");
    t2.print();
    std::cout << "\n";

    // --- Table 3: cross-core channel, BER vs co-runner count ---
    Table t3("Cross-core WB channel under OS noise: BER vs co-runners "
             "(multi-core presets; co-runners fill free cores first, "
             "then share the parties' cores)");
    t3.header({"platform", "none", "1", "2", "3", "4"});
    for (const sim::Platform *p : sim::allPlatforms()) {
        if (p->cores < 2)
            continue;
        std::vector<std::string> row{p->name};
        for (unsigned n : {0u, 1u, 2u, 3u, 4u})
            row.push_back(Table::pct(
                meanCrossCoreBer(p->name, SchedulerConfig::mixOf(n)), 2));
        t3.row(std::move(row));
    }
    t3.note("on the 4-core desktop, co-runners 1-2 land on the free "
            "cores: their shared-LLC traffic is absorbed by the "
            "multi-level encoding (the paper's noisy-line robustness). "
            "Co-runner 3 starts time-sharing the sender's core: unlike "
            "the SMT deployment, cross-core parties cannot co-schedule "
            "through a deschedule, so the channel collapses.");
    t3.note("the non-inclusive xeonE5-2650-2core row is the closed "
            "channel (and its co-runners share party cores "
            "immediately).");
    t3.print();
    return 0;
}
