/**
 * @file
 * OS-noise sweep: the Table-VII-style robustness tables, produced by
 * the sim::Scheduler subsystem on every platform registry preset.
 *
 *   $ ./example_noise_sweep [seeds]
 *
 * Three tables:
 *
 *  1. Single-core WB channel, BER vs co-runner count. Co-runners
 *     time-share the channel's physical core in fixed slices with
 *     context-switch pollution. An idle mix (spinners) leaves the
 *     channel at 0% BER — the paper's claim that benign co-residency
 *     does not break the WB channel — while the mixed workloads
 *     (streaming / pointer-chase / random-store) degrade it
 *     monotonically as more of them are added.
 *
 *  2. Cross-core side-channel attack, accuracy vs migration period:
 *     every `period` trials the attacker is forcibly migrated to the
 *     next victim-free core, leaving its warmed private caches
 *     behind; the first probes after each hop mismeasure, so accuracy
 *     falls as the period shrinks. Single-core presets run their
 *     2-core cross-core instantiation, like usePlatform() does.
 *
 *  3. Cross-core WB channel, BER vs co-runner count on the multi-core
 *     presets (co-runners fill the free cores first, then share the
 *     parties' cores under timeslicing).
 *
 * CI uploads this output as the noise-sweep artifact; docs/PERF.md
 * "Noise robustness" records a reference run.
 *
 * `-j N` fans the sweep cells over a sim::SweepRunner thread pool
 * (N = 0 picks the hardware concurrency). Every cell is an
 * independent shared-nothing simulation and results are assembled in
 * fixed grid order, so the output is byte-identical at any -j.
 */

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "chan/channel.hh"
#include "chan/cross_core.hh"
#include "common/table.hh"
#include "sidechan/attack.hh"
#include "sim/platform.hh"
#include "sim/scheduler.hh"
#include "sim/sweep_runner.hh"

using namespace wb;

namespace
{

unsigned gSeeds = 3;

/** Average single-core channel BER over the seed pool. */
double
meanChannelBer(const std::string &platformName,
               const std::vector<sim::CoRunnerKind> &mix)
{
    double sum = 0.0;
    for (unsigned s = 0; s < gSeeds; ++s) {
        chan::ChannelConfig cfg;
        cfg.usePlatform(platformName);
        cfg.noise = sim::NoiseModel::quiet();
        cfg.platform.lat.noiseSigma = 0.0;
        cfg.protocol.ts = cfg.protocol.tr = 5500;
        cfg.protocol.encoding =
            chan::Encoding::binary(std::min(4u, cfg.platform.l1.ways));
        cfg.protocol.frames = 3;
        cfg.calibration.measurements = 60;
        cfg.seed = 1 + s;
        cfg.scheduler = sim::platform(platformName).noisePreset;
        cfg.scheduler.coRunners = mix;
        sum += chan::runChannel(cfg).ber;
    }
    return sum / gSeeds;
}

/** Average cross-core attack accuracy over the seed pool. */
double
meanAttackAccuracy(const std::string &platformName, Cycles migrationPeriod)
{
    double sum = 0.0;
    for (unsigned s = 0; s < gSeeds; ++s) {
        sidechan::AttackConfig cfg;
        cfg.usePlatform(platformName);
        cfg.crossCore = true;
        cfg.scenario = sidechan::Scenario::DirtyProbe;
        cfg.trials = 96;
        cfg.calibration = 80;
        cfg.seed = 1 + s;
        cfg.scheduler = sim::platform(platformName).noisePreset;
        cfg.scheduler.migrationPeriod = migrationPeriod;
        sum += sidechan::runAttack(cfg).accuracy;
    }
    return sum / gSeeds;
}

/** Average cross-core channel BER over the seed pool. */
double
meanCrossCoreBer(const std::string &platformName,
                 const std::vector<sim::CoRunnerKind> &mix)
{
    double sum = 0.0;
    for (unsigned s = 0; s < gSeeds; ++s) {
        chan::CrossCoreChannelConfig cfg;
        cfg.usePlatform(platformName);
        cfg.protocol.frames = 2;
        cfg.seed = 1 + s;
        cfg.scheduler = sim::platform(platformName).noisePreset;
        cfg.scheduler.coRunners = mix;
        sum += chan::runCrossCoreChannel(cfg).ber;
    }
    return sum / gSeeds;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned jobs = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "-j") == 0 && i + 1 < argc)
            jobs = unsigned(std::stoul(argv[++i]));
        else
            gSeeds = std::max(1u, unsigned(std::stoul(argv[i])));
    }
    sim::SweepRunner pool(jobs);

    using sim::CoRunnerKind;
    using sim::SchedulerConfig;

    // --- Table 1: single-core channel, BER vs co-runner count ---
    const std::vector<std::vector<CoRunnerKind>> t1Mixes = {
        {},
        {CoRunnerKind::Idle, CoRunnerKind::Idle},
        SchedulerConfig::mixOf(1),
        SchedulerConfig::mixOf(2),
        SchedulerConfig::mixOf(4),
    };
    std::vector<const sim::Platform *> t1Platforms;
    for (const sim::Platform *p : sim::allPlatforms())
        if (p->cores <= 1) // the multi-core presets repeat their base
            t1Platforms.push_back(p);
    const auto t1Bers = pool.map<double>(
        t1Platforms.size() * t1Mixes.size(), [&](std::size_t i) {
            return meanChannelBer(t1Platforms[i / t1Mixes.size()]->name,
                                  t1Mixes[i % t1Mixes.size()]);
        });

    Table t1("Single-core WB channel under OS noise: BER vs co-runners "
             "(timesliced core sharing + context-switch pollution)");
    t1.header({"platform", "none", "2 idle", "1 mixed", "2 mixed",
               "4 mixed"});
    for (std::size_t r = 0; r < t1Platforms.size(); ++r) {
        std::vector<std::string> row{t1Platforms[r]->name};
        for (std::size_t c = 0; c < t1Mixes.size(); ++c)
            row.push_back(
                Table::pct(t1Bers[r * t1Mixes.size() + c], 2));
        t1.row(std::move(row));
    }
    t1.note("mixed co-runners cycle streaming -> pointer-chase -> "
            "random-store -> idle (SchedulerConfig::mixOf).");
    t1.note("cortexA53-wt (write-through) and xeonE5-2650-dawg "
            "(partitioned) have no WB channel in any column.");
    t1.note("seeds averaged per cell: " + std::to_string(gSeeds));
    t1.print();
    std::cout << "\n";

    // --- Table 2: cross-core attack, accuracy vs migration period ---
    const std::vector<Cycles> t2Periods = {0, 48, 12, 3};
    std::vector<const sim::Platform *> t2Platforms;
    for (const sim::Platform *p : sim::allPlatforms()) {
        // Sliced LLCs scatter the attack's hand-built line pools
        // across slices; those presets are measured by the tenant
        // sweep (example_tenant_scaling), not this grid.
        if (sim::multiCoreCapable(p->params) && p->params.llcSlices <= 1)
            t2Platforms.push_back(p);
    }
    const auto t2Accs = pool.map<double>(
        t2Platforms.size() * t2Periods.size(), [&](std::size_t i) {
            return meanAttackAccuracy(
                t2Platforms[i / t2Periods.size()]->name,
                t2Periods[i % t2Periods.size()]);
        });

    Table t2("Cross-core store-gadget attack: accuracy vs attacker "
             "migration period (trials between forced core hops)");
    t2.header({"platform", "cores", "pinned", "every 48", "every 12",
               "every 3"});
    for (std::size_t r = 0; r < t2Platforms.size(); ++r) {
        const sim::Platform *p = t2Platforms[r];
        std::vector<std::string> row{
            p->name, std::to_string(std::max(2u, p->cores))};
        for (std::size_t c = 0; c < t2Periods.size(); ++c)
            row.push_back(
                Table::pct(t2Accs[r * t2Periods.size() + c], 1));
        t2.row(std::move(row));
    }
    t2.note("single-core presets run their 2-core cross-core "
            "instantiation; non-inclusive LLCs have no cross-core "
            "channel, so those rows sit at coin-flip accuracy.");
    t2.print();
    std::cout << "\n";

    // --- Table 3: cross-core channel, BER vs co-runner count ---
    Table t3("Cross-core WB channel under OS noise: BER vs co-runners "
             "(multi-core presets; co-runners fill free cores first, "
             "then share the parties' cores)");
    t3.header({"platform", "none", "1", "2", "3", "4"});
    const std::vector<unsigned> t3Counts = {0, 1, 2, 3, 4};
    std::vector<const sim::Platform *> t3Platforms;
    for (const sim::Platform *p : sim::allPlatforms())
        if (p->cores >= 2 && p->params.llcSlices <= 1)
            t3Platforms.push_back(p);
    const auto t3Bers = pool.map<double>(
        t3Platforms.size() * t3Counts.size(), [&](std::size_t i) {
            return meanCrossCoreBer(
                t3Platforms[i / t3Counts.size()]->name,
                SchedulerConfig::mixOf(t3Counts[i % t3Counts.size()]));
        });
    for (std::size_t r = 0; r < t3Platforms.size(); ++r) {
        std::vector<std::string> row{t3Platforms[r]->name};
        for (std::size_t c = 0; c < t3Counts.size(); ++c)
            row.push_back(
                Table::pct(t3Bers[r * t3Counts.size() + c], 2));
        t3.row(std::move(row));
    }
    t3.note("on the 4-core desktop, co-runners 1-2 land on the free "
            "cores: their shared-LLC traffic is absorbed by the "
            "multi-level encoding (the paper's noisy-line robustness). "
            "Co-runner 3 starts time-sharing the sender's core: unlike "
            "the SMT deployment, cross-core parties cannot co-schedule "
            "through a deschedule, so the channel collapses.");
    t3.note("the non-inclusive xeonE5-2650-2core row is the closed "
            "channel (and its co-runners share party cores "
            "immediately).");
    t3.print();
    return 0;
}
