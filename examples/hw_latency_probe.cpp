/**
 * @file
 * Real-hardware probe: measure THIS machine's Table IV equivalents
 * with the paper's own method (rdtscp-bracketed pointer chase over
 * same-set lines), plus a best-effort two-thread covert-channel PoC.
 *
 *   $ ./hw_latency_probe [--channel]
 *
 * Single-process, so the latency probe works on any x86-64 Linux host
 * (containers included). The channel PoC needs two SMT sibling CPUs to
 * produce a clean signal; it reports which CPUs it used.
 */

#include <cstring>
#include <iostream>

#include "common/table.hh"
#include "hw/channel_hw.hh"
#include "hw/latency_probe.hh"
#include "hw/tsc_hw.hh"

using namespace wb;
using namespace wb::hw;

int
main(int argc, char **argv)
{
    banner(std::cout, "Host latency probe (paper Fig. 3 port)");
    if (!available()) {
        std::cout << "Not an x86-64 build: hardware timing "
                     "unavailable. The simulator benches carry the "
                     "reproduction.\n";
        return 0;
    }

    ProbeConfig cfg;
    cfg.measurements = 2000;
    auto res = runLatencyProbe(cfg);

    Table t("This machine (host TSC cycles; virtualized hosts will be "
            "noisy)");
    t.header({"measurement", "p25", "median", "p75"});
    t.row({"single hot load (rdtscp bracket)",
           Table::num(res.l1Hit.percentile(25), 0),
           Table::num(res.l1Hit.median(), 0),
           Table::num(res.l1Hit.percentile(75), 0)});
    for (unsigned d = 0; d <= 8; d += 2) {
        t.row({"10-line chase, d=" + std::to_string(d) +
                   " dirty lines in set",
               Table::num(res.chaseByDirty[d].percentile(25), 0),
               Table::num(res.chaseByDirty[d].median(), 0),
               Table::num(res.chaseByDirty[d].percentile(75), 0)});
    }
    t.note("fitted extra cycles per dirty line: " +
           Table::num(res.perLinePenalty, 2) +
           "  (paper's Xeon E5-2650: ~10-12)");
    t.note("A clearly positive slope demonstrates the dirty-state "
           "write-back penalty on this host's L1/L2.");
    t.print(std::cout);

    if (argc > 1 && std::strcmp(argv[1], "--channel") == 0) {
        banner(std::cout, "Two-thread covert channel PoC");
        HwChannelConfig ch;
        std::vector<bool> bits;
        for (int i = 0; i < 256; ++i)
            bits.push_back((i / 3) % 2 == 0);
        auto r = runHwChannel(ch, bits);
        if (!r.supported) {
            std::cout << "unsupported: " << r.note << "\n";
            return 0;
        }
        std::cout << "  CPUs: sender=" << r.senderCpu
                  << " receiver=" << r.receiverCpu << "  " << r.note
                  << "\n  threshold=" << r.threshold
                  << "  raw BER=" << Table::pct(r.ber, 1)
                  << "\n  (expect ~50% unless the CPUs are SMT "
                     "siblings sharing an L1D)\n";
    }
    return 0;
}
